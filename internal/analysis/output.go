package analysis

import (
	"bufio"
	"encoding/json"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// jsonFinding is the machine-readable form of one Finding. Positions are
// split into file/line/column so consumers do not have to re-parse the
// human-readable "file:line:col" rendering. Columns here are go/token byte
// columns (1-based), matching what the compiler prints; the SARIF writer
// converts to the UTF-16 unit the spec requires.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the envelope WriteJSON emits.
type jsonReport struct {
	Tool     string        `json:"tool"`
	Count    int           `json:"count"`
	Findings []jsonFinding `json:"findings"`
}

// WriteJSON writes findings to w as a single indented JSON document:
// {"tool":"sialint","count":N,"findings":[...]}. Paths are rewritten
// relative to baseDir when possible, so the output is stable across
// checkout locations. The findings array is always present (empty, not
// null, when there is nothing to report).
func WriteJSON(w io.Writer, findings []Finding, baseDir string) error {
	report := jsonReport{
		Tool:     "sialint",
		Count:    len(findings),
		Findings: make([]jsonFinding, 0, len(findings)),
	}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     relativeTo(baseDir, f.Pos.Filename),
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// SARIF 2.1.0 skeleton — only the fields code-scanning consumers require.
// The full schema is enormous; this subset (tool driver with rules, one
// result per finding with a physical location) is what GitHub code scanning
// and most SARIF viewers read.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes findings to w as a SARIF 2.1.0 log with one run. Every
// analyzer that contributed a finding appears as a rule; every finding is an
// error-level result anchored at its start position. Paths are emitted
// relative to baseDir with the %SRCROOT% base id, the convention SARIF
// consumers use to re-root results onto a checkout.
func WriteSARIF(w io.Writer, findings []Finding, analyzers []*Analyzer, baseDir string) error {
	cols := newColumnConverter()
	docs := map[string]string{}
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	used := map[string]bool{}
	for _, f := range findings {
		used[f.Analyzer] = true
	}
	names := make([]string, 0, len(used))
	for name := range used {
		names = append(names, name)
	}
	sort.Strings(names)
	rules := make([]sarifRule, 0, len(names))
	for _, name := range names {
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifText{Text: docs[name]}})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(relativeTo(baseDir, f.Pos.Filename)),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: cols.utf16Column(f.Pos)},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "sialint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// columnConverter translates go/token byte columns into the 1-based UTF-16
// code-unit columns SARIF 2.1.0 requires (§3.30.2: "startColumn ... counts
// UTF-16 code units"). go/token.Position.Column counts bytes, so the two
// disagree on any line containing a multi-byte rune before the finding. The
// converter re-reads the flagged line from the source file and counts UTF-16
// units (runes above U+FFFF are surrogate pairs: two units) over the bytes
// preceding the column. Files are cached per writer invocation; unreadable
// files fall back to the byte column, which is at worst the old behavior.
type columnConverter struct {
	lines map[string][]string // filename -> lines (nil when unreadable)
}

func newColumnConverter() *columnConverter {
	return &columnConverter{lines: map[string][]string{}}
}

func (c *columnConverter) utf16Column(pos token.Position) int {
	lines, ok := c.lines[pos.Filename]
	if !ok {
		lines = readLines(pos.Filename)
		c.lines[pos.Filename] = lines
	}
	if pos.Line < 1 || pos.Line > len(lines) || pos.Column < 1 {
		return pos.Column
	}
	line := lines[pos.Line-1]
	prefix := pos.Column - 1 // bytes before the finding
	if prefix > len(line) {
		return pos.Column
	}
	units := 0
	for _, r := range line[:prefix] {
		if r > 0xFFFF {
			units += 2
		} else {
			units++
		}
	}
	return units + 1
}

// readLines loads a file's lines; nil means unreadable.
func readLines(name string) []string {
	f, err := os.Open(name)
	if err != nil {
		return nil
	}
	defer f.Close()
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if sc.Err() != nil {
		return nil
	}
	return lines
}

// relativeTo rewrites path relative to base when that produces a path inside
// base; otherwise the input is returned unchanged.
func relativeTo(base, path string) string {
	if base == "" {
		return path
	}
	rel, err := filepath.Rel(base, path)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return path
	}
	return rel
}
