package analysis

import "testing"

// Tests for the concurrency-safety and untrusted-input analyzers:
// goroutine-leak, atomic-mix, chan-misuse, taint-bound. Same discipline
// as the rest of the suite: a good fixture with zero findings, a bad
// fixture with an exact count plus message substrings.

func goroCfg(mod string) *Config {
	return &Config{GoroutinePackages: []string{mod + "/worker"}}
}

func TestGoroutineLeakGood(t *testing.T) {
	cfg := goroCfg("glgood")
	got := runOne(t, "goroleak_good", cfg, GoroutineLeak(cfg))
	wantFindings(t, got, 0)
}

func TestGoroutineLeakBad(t *testing.T) {
	cfg := goroCfg("glbad")
	got := runOne(t, "goroleak_bad", cfg, GoroutineLeak(cfg))
	wantFindings(t, got, 3, "can run forever", "wg.Wait hangs")
}

func TestAtomicMixGood(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "atomicmix_good", cfg, AtomicMix(cfg))
	wantFindings(t, got, 0)
}

func TestAtomicMixBad(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "atomicmix_bad", cfg, AtomicMix(cfg))
	wantFindings(t, got, 3, "plain read", "plain write", "sync/atomic")
}

func TestChanMisuseGood(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "chanmisuse_good", cfg, ChanMisuse(cfg))
	wantFindings(t, got, 0)
}

func TestChanMisuseBad(t *testing.T) {
	cfg := &Config{}
	got := runOne(t, "chanmisuse_bad", cfg, ChanMisuse(cfg))
	wantFindings(t, got, 5,
		"after it is closed", "already closed", "does not own",
		"busy spin", "nil on this path")
}

func taintCfg(mod string) *Config {
	return &Config{
		TaintPackages:   []string{mod + "/serve"},
		TaintSources:    []string{mod + "/api.Request"},
		TaintSanitizers: []string{"Validate", "BuildOptions"},
		TaintBoundTypes: []string{mod + "/core.Options"},
	}
}

func TestTaintBoundGood(t *testing.T) {
	cfg := taintCfg("tagood")
	got := runOne(t, "taintbound_good", cfg, TaintBound(cfg))
	wantFindings(t, got, 0)
}

func TestTaintBoundBad(t *testing.T) {
	cfg := taintCfg("tabad")
	got := runOne(t, "taintbound_bad", cfg, TaintBound(cfg))
	wantFindings(t, got, 5,
		"WithTimeout", "make() size", "loop bound", "MaxIterations", "literal")
}
