package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags variables — struct fields and package-level vars — that
// are accessed both through sync/atomic and by plain reads or writes. An
// atomic.AddInt64 on one side and a bare `s.n++` on the other is the
// classic race that -race only catches when the schedule cooperates: the
// plain access tears the atomicity discipline for every site, not just
// its own.
//
// The analysis is whole-program: access summaries are collected per
// variable across every package in the module (the loader type-checks
// each package once, so a field's *types.Var is identical from every
// importer), then every plain access to a variable that also has atomic
// accesses is reported, citing one atomic site as the witness. Addresses
// passed to sync/atomic calls are not themselves plain accesses.
//
// The analyzer is deliberately indifferent to mutexes: a field mixed
// between atomic ops and mutex-guarded plain access is still mixed — the
// mutex does not order the plain access against the atomic one unless
// every atomic site also takes it, which defeats the point of atomics.
// Escape with `// atomic: <reason>` on the plain access when the mix is
// provably benign (e.g. a plain read before the goroutines exist).
func AtomicMix(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "atomic-mix",
		Doc:  "variables accessed both via sync/atomic and by plain read/write",
		Run: func(pass *Pass) {
			prog := pass.Program()
			st := prog.atomicAnalysis()
			for _, f := range st.findings[pass.Pkg] {
				if reason, ok := pass.Pkg.justification(f.pos, "atomic:"); ok && reason != "" {
					continue
				}
				pass.Reportf(f.pos, "%s", f.msg)
			}
		},
	}
}

// atomicAccess is one access site to a tracked variable.
type atomicAccess struct {
	pkg   *Package
	pos   token.Pos
	write bool // plain accesses only: assignment, ++/--, or address-taken
}

// atomicFinding is one report, pre-resolved to the package that owns the
// plain-access site so per-package passes can replay it.
type atomicFinding struct {
	pos token.Pos
	msg string
}

type atomicState struct {
	findings map[*Package][]atomicFinding
}

// atomicAnalysis collects per-variable access summaries across the whole
// program once and caches the verdicts.
func (p *Program) atomicAnalysis() *atomicState {
	p.atomicOnce.Do(func() {
		st := &atomicState{findings: map[*Package][]atomicFinding{}}
		atomicSites := map[*types.Var][]atomicAccess{}
		plainSites := map[*types.Var][]atomicAccess{}
		// skip marks expression nodes that are the &x argument of a
		// sync/atomic call (or the receiver chain under it): the atomic
		// access itself, not a plain one.
		skip := map[ast.Node]bool{}

		// Phase 1: find every sync/atomic call and record which variable
		// its address argument names.
		for _, pkg := range p.Pkgs {
			for _, file := range pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || !isSyncAtomicCall(pkg, call) {
						return true
					}
					if len(call.Args) == 0 {
						return true
					}
					addr, ok := call.Args[0].(*ast.UnaryExpr)
					if !ok || addr.Op != token.AND {
						return true
					}
					if v := resolveVar(pkg, addr.X); v != nil {
						atomicSites[v] = append(atomicSites[v], atomicAccess{pkg: pkg, pos: call.Pos()})
						skip[addr] = true
					}
					return true
				})
			}
		}
		if len(atomicSites) == 0 {
			p.atomicMix = st
			return
		}

		// Phase 2: every other use of those variables is a plain access.
		for _, pkg := range p.Pkgs {
			for _, file := range pkg.Files {
				writes := collectWrites(file)
				ast.Inspect(file, func(n ast.Node) bool {
					if skip[n] {
						return false
					}
					e, ok := n.(ast.Expr)
					if !ok {
						return true
					}
					v := resolveVar(pkg, e)
					if v == nil || atomicSites[v] == nil {
						return true
					}
					plainSites[v] = append(plainSites[v], atomicAccess{
						pkg: pkg, pos: e.Pos(), write: writes[n],
					})
					return false // don't double-count the base of a selector
				})
			}
		}

		// Verdicts: each plain site of a mixed variable is a finding.
		vars := make([]*types.Var, 0, len(plainSites))
		for v := range plainSites {
			vars = append(vars, v)
		}
		sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
		for _, v := range vars {
			witness := atomicSites[v][0]
			for _, site := range plainSites[v] {
				kind := "read"
				if site.write {
					kind = "write"
				}
				msg := fmt.Sprintf(
					"plain %s of %q, which is also accessed via sync/atomic (e.g. at %s); use the atomic API everywhere or justify with // atomic:",
					kind, v.Name(), shortSite(witness.pkg, witness.pos))
				st.findings[site.pkg] = append(st.findings[site.pkg], atomicFinding{pos: site.pos, msg: msg})
			}
		}
		p.atomicMix = st
	})
	return p.atomicMix
}

// isSyncAtomicCall reports whether call is atomic.XXX(...) where the
// package identifier resolves to the real sync/atomic import.
func isSyncAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// resolveVar maps an expression to the variable it names: a struct field
// (through a selector) or a package-level var. Locals are skipped — a
// local mixed with atomics inside one function is visible to -race and
// out of scope here.
func resolveVar(pkg *Package, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := pkg.Info.Selections[x]; ok {
			if v, ok := selInfo.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Qualified identifier pkg.Var.
		if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[x].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// collectWrites marks expression nodes that appear in write position:
// assignment LHS, ++/--, or with their address taken (a conservative
// write — the pointer can store through it).
func collectWrites(file *ast.File) map[ast.Node]bool {
	writes := map[ast.Node]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				writes[lhs] = true
			}
		case *ast.IncDecStmt:
			writes[x.X] = true
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				writes[x.X] = true
			}
		}
		return true
	})
	return writes
}
