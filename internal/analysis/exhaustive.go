package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// ExhaustiveSwitch enforces that every type switch over one of the
// configured AST interfaces (predicate.Expr, predicate.Predicate,
// smt.Formula) either lists every concrete implementation found in the
// loaded package graph or carries an explicit default clause. The interface
// hierarchies are dispatched by dozens of type switches that panic on
// unknown variants, so a new AST node added without updating a switch
// compiles silently and crashes at runtime; this analyzer turns that hole
// into a lint failure.
func ExhaustiveSwitch(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "exhaustive-switch",
		Doc:  "type switches over Sia's AST interfaces must cover every implementation or have a default",
		Run: func(pass *Pass) {
			targets := resolveSwitchTargets(pass.All, cfg.SwitchInterfaces)
			if len(targets) == 0 {
				return
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					sw, ok := n.(*ast.TypeSwitchStmt)
					if !ok {
						return true
					}
					pass.checkTypeSwitch(sw, targets)
					return true
				})
			}
		},
	}
}

// switchTarget is one interface to enforce, with its implementation set
// collected across the whole package graph.
type switchTarget struct {
	name  string // qualified interface name, for messages
	iface *types.Named
	impls []implType
}

// implType is one concrete implementation of a target interface, in the
// form a case clause would name it (*T for pointer-receiver
// implementations, T otherwise).
type implType struct {
	typ  types.Type
	name string
}

// resolveSwitchTargets resolves the configured interface names and collects
// their implementations from every loaded package.
func resolveSwitchTargets(all []*Package, names []string) []switchTarget {
	var targets []switchTarget
	for _, qualified := range names {
		named := lookupNamed(all, qualified)
		if named == nil {
			continue
		}
		iface, ok := named.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		t := switchTarget{name: qualified, iface: named}
		seen := map[string]bool{}
		for _, pkg := range all {
			if pkg.Types == nil {
				continue
			}
			scope := pkg.Types.Scope()
			for _, objName := range scope.Names() {
				tn, ok := scope.Lookup(objName).(*types.TypeName)
				if !ok || tn.IsAlias() {
					continue
				}
				obj := tn.Type()
				if types.IsInterface(obj) {
					continue
				}
				var impl types.Type
				switch {
				case types.Implements(obj, iface):
					impl = obj
				case types.Implements(types.NewPointer(obj), iface):
					impl = types.NewPointer(obj)
				default:
					continue
				}
				label := relativeName(impl)
				if !seen[label] {
					seen[label] = true
					t.impls = append(t.impls, implType{typ: impl, name: label})
				}
			}
		}
		sort.Slice(t.impls, func(i, j int) bool { return t.impls[i].name < t.impls[j].name })
		targets = append(targets, t)
	}
	return targets
}

// relativeName renders an implementation type as "pkg.T" or "*pkg.T" using
// the final import path element as qualifier.
func relativeName(t types.Type) string {
	qual := func(p *types.Package) string {
		parts := strings.Split(p.Path(), "/")
		return parts[len(parts)-1]
	}
	return types.TypeString(t, qual)
}

// checkTypeSwitch reports implementations missing from a default-less type
// switch over a target interface.
func (pass *Pass) checkTypeSwitch(sw *ast.TypeSwitchStmt, targets []switchTarget) {
	subject := typeSwitchSubject(sw)
	if subject == nil {
		return
	}
	subjType := pass.Pkg.Info.Types[subject].Type
	if subjType == nil {
		return
	}
	var target *switchTarget
	for i := range targets {
		if types.Identical(subjType, targets[i].iface) {
			target = &targets[i]
			break
		}
	}
	if target == nil {
		return
	}
	var covered []types.Type
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // explicit default: the switch opts out of exhaustiveness
		}
		for _, texpr := range clause.List {
			tv, ok := pass.Pkg.Info.Types[texpr]
			if !ok || tv.Type == nil {
				continue // e.g. "case nil:"
			}
			covered = append(covered, tv.Type)
		}
	}
	var missing []string
	for _, impl := range target.impls {
		found := false
		for _, c := range covered {
			if types.Identical(c, impl.typ) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, impl.name)
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(), "type switch over %s is missing %s and has no default clause",
			target.name, strings.Join(missing, ", "))
	}
}

// typeSwitchSubject extracts the expression whose dynamic type the switch
// inspects: e in both "switch e.(type)" and "switch x := e.(type)".
func typeSwitchSubject(sw *ast.TypeSwitchStmt) ast.Expr {
	var assertion ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		assertion = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			assertion = s.Rhs[0]
		}
	}
	ta, ok := assertion.(*ast.TypeAssertExpr)
	if !ok {
		return nil
	}
	return ta.X
}
