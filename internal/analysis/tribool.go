package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TriBoolMisuse polices the boundary between SQL's three-valued logic and
// Go's two-valued bool. Collapsing a TriBool to bool with `tv == True` (or
// `tv != False`) silently conflates Unknown with False (or True) — the
// exact NULL-semantics mistake Sia's verification under Kleene logic
// exists to prevent. The collapse is sometimes the intended WHERE-clause
// semantics, so a comparison accompanied by a "// tribool:" justification
// comment on the same or preceding line is accepted. Conversions between
// the TriBool type and bool or integer types are flagged unconditionally
// outside the package that defines the logic.
func TriBoolMisuse(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "tribool-misuse",
		Doc:  "TriBool comparisons collapsing Unknown need a // tribool: justification; no numeric casts outside the home package",
		Run: func(pass *Pass) {
			named := lookupNamed(pass.All, cfg.TriBoolType)
			if named == nil {
				return
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.BinaryExpr:
						pass.checkTriBoolCompare(x, named, cfg)
					case *ast.CallExpr:
						pass.checkTriBoolConversion(x, named, cfg)
					}
					return true
				})
			}
		},
	}
}

// checkTriBoolCompare flags == / != comparisons of a TriBool against the
// True or False constants without a justification comment.
func (pass *Pass) checkTriBoolCompare(e *ast.BinaryExpr, tri *types.Named, cfg *Config) {
	if e.Op != token.EQL && e.Op != token.NEQ {
		return
	}
	info := pass.Pkg.Info
	lt, rt := info.Types[e.X].Type, info.Types[e.Y].Type
	if lt == nil || rt == nil {
		return
	}
	if !types.Identical(lt, tri) && !types.Identical(rt, tri) {
		return
	}
	constName := ""
	for _, operand := range []ast.Expr{e.X, e.Y} {
		if name := pass.triBoolConstName(operand, tri, cfg); name != "" {
			constName = name
		}
	}
	if constName == "" {
		return // tv == other tv, or comparison against Unknown: real 3VL
	}
	if pass.Pkg.commentedWith(e.Pos(), "tribool:") {
		return
	}
	conflated := "Unknown with False"
	if (constName == cfg.TrueName && e.Op == token.NEQ) || (constName == cfg.FalseName && e.Op == token.EQL) {
		conflated = "Unknown with True"
	}
	pass.Reportf(e.Pos(), "comparison against %s collapses three-valued logic (conflates %s); justify with a // tribool: comment or handle Unknown explicitly",
		constName, conflated)
}

// triBoolConstName returns the configured constant name (True/False) if the
// expression is a use of that constant, and "" otherwise. Comparisons
// against Unknown are deliberate three-valued handling and stay exempt.
func (pass *Pass) triBoolConstName(e ast.Expr, tri *types.Named, cfg *Config) string {
	var ident *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		ident = x
	case *ast.SelectorExpr:
		ident = x.Sel
	default:
		return ""
	}
	obj, ok := pass.Pkg.Info.Uses[ident]
	if !ok {
		return ""
	}
	cst, ok := obj.(*types.Const)
	if !ok || !types.Identical(cst.Type(), tri) {
		return ""
	}
	if cst.Name() == cfg.TrueName || cst.Name() == cfg.FalseName {
		return cst.Name()
	}
	return ""
}

// checkTriBoolConversion flags conversions between TriBool and bool or
// integer types outside the TriBool home package.
func (pass *Pass) checkTriBoolConversion(call *ast.CallExpr, tri *types.Named, cfg *Config) {
	if pass.Pkg.Path == cfg.TriBoolPkg {
		return
	}
	if len(call.Args) != 1 {
		return
	}
	info := pass.Pkg.Info
	funTV, ok := info.Types[call.Fun]
	if !ok || !funTV.IsType() {
		return
	}
	target := funTV.Type
	argType := info.Types[call.Args[0]].Type
	if argType == nil || types.Identical(target, argType) {
		return
	}
	switch {
	case types.Identical(target, tri) && isBoolOrInteger(argType):
		pass.Reportf(call.Pos(), "conversion from %s to %s outside %s bypasses three-valued logic",
			argType, tri.Obj().Name(), cfg.TriBoolPkg)
	case types.Identical(argType, tri) && isBoolOrInteger(target):
		pass.Reportf(call.Pos(), "conversion from %s to %s outside %s collapses three-valued logic",
			tri.Obj().Name(), target, cfg.TriBoolPkg)
	}
}

// isBoolOrInteger reports whether t's core type is bool or an integer kind.
func isBoolOrInteger(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return basic.Info()&(types.IsBoolean|types.IsInteger) != 0
}
