package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllocBudget returns the alloc-budget analyzer: it walks the call graph
// from every function annotated // sia:hotpath and flags operations that
// allocate on the Go heap in any reachable function. The point is to turn
// the runtime AllocsPerRun guarantees in internal/obs — and the zero-alloc
// ambitions of the smt elimination loops and engine kernels — into a
// compile-time check.
//
// Flagged operations:
//
//   - &T{...} and slice/map composite literals (escape-prone)
//   - make, new, and append whose result lands in a different variable
//     (x = append(x, ...) is the amortized in-place idiom and is exempt)
//   - map writes (insertion may grow the table)
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions
//   - interface boxing at call sites (non-pointer-shaped, non-constant
//     arguments passed to interface parameters)
//   - calls to known-allocating standard library functions (fmt.Sprintf,
//     errors.New, strings.Join, strconv.Itoa, big.NewInt, (*big.Int).String,
//     ...)
//   - function literals that capture variables, and go statements
//   - calls the graph cannot resolve (untracked function values,
//     interfaces with no known implementation): an unresolved callee cannot
//     be proven allocation-free
//
// Exemptions: allocations inside a return statement whose error result is
// non-nil (error paths are cold by definition), and inside panic arguments.
// A site is justified with an `// alloc: <reason>` comment on its line or
// the line above; a declaration whose doc comment carries `// alloc:`
// justifies the whole function.
func AllocBudget(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "alloc-budget",
		Doc:  "flags heap allocations reachable from // sia:hotpath entry points",
		Run:  runAllocBudget,
	}
}

func runAllocBudget(pass *Pass) {
	prog := pass.Program()
	hot := prog.HotReachable()
	if len(hot) == 0 {
		return
	}
	for _, node := range prog.Nodes {
		if node.Pkg != pass.Pkg {
			continue
		}
		root, reachable := hot[node]
		if !reachable || allocJustifiedDecl(node) {
			continue
		}
		scanAllocs(pass, node, root)
	}
}

// allocJustifiedDecl reports whether node or an enclosing declaration
// carries a decl-level // alloc: justification (a literal inherits its
// creator's blanket).
func allocJustifiedDecl(node *FuncNode) bool {
	for n := node; n != nil; n = n.Encl {
		if n.AllocJustified {
			return true
		}
	}
	return false
}

// allocFuncs are standard-library calls that always allocate their result.
// Keys are (*types.Func).FullName. The list is deliberately conservative:
// append-style APIs (strconv.AppendInt, (*big.Int).Append) write into a
// caller buffer and are absent.
var allocFuncs = map[string]string{
	"fmt.Sprintf":  "fmt.Sprintf allocates its result",
	"fmt.Sprint":   "fmt.Sprint allocates its result",
	"fmt.Sprintln": "fmt.Sprintln allocates its result",
	"fmt.Errorf":   "fmt.Errorf allocates",
	"fmt.Fprintf":  "fmt.Fprintf allocates internally",
	"fmt.Fprint":   "fmt.Fprint allocates internally",
	"fmt.Fprintln": "fmt.Fprintln allocates internally",
	"errors.New":   "errors.New allocates",
	"errors.Join":  "errors.Join allocates",

	"strings.Join":       "strings.Join allocates",
	"strings.Repeat":     "strings.Repeat allocates",
	"strings.Replace":    "strings.Replace allocates",
	"strings.ReplaceAll": "strings.ReplaceAll allocates",
	"strings.ToUpper":    "strings.ToUpper allocates",
	"strings.ToLower":    "strings.ToLower allocates",
	"strings.Split":      "strings.Split allocates",
	"strings.SplitN":     "strings.SplitN allocates",
	"strings.Fields":     "strings.Fields allocates",
	"strings.Clone":      "strings.Clone allocates",

	"strconv.Itoa":        "strconv.Itoa allocates",
	"strconv.FormatInt":   "strconv.FormatInt allocates",
	"strconv.FormatUint":  "strconv.FormatUint allocates",
	"strconv.FormatFloat": "strconv.FormatFloat allocates",
	"strconv.Quote":       "strconv.Quote allocates",

	"sort.Slice":       "sort.Slice boxes its closure",
	"sort.SliceStable": "sort.SliceStable boxes its closure",
	"sort.Sort":        "sort.Sort boxes its argument",
	"sort.Stable":      "sort.Stable boxes its argument",
	"sort.Strings":     "sort.Strings boxes its argument",
	"sort.Ints":        "sort.Ints boxes its argument",

	"math/big.NewInt":   "big.NewInt allocates",
	"math/big.NewRat":   "big.NewRat allocates",
	"math/big.NewFloat": "big.NewFloat allocates",

	"(*math/big.Int).String":      "(*big.Int).String allocates",
	"(*math/big.Int).Text":        "(*big.Int).Text allocates",
	"(*math/big.Int).Bytes":       "(*big.Int).Bytes allocates",
	"(*math/big.Rat).String":      "(*big.Rat).String allocates",
	"(*math/big.Rat).RatString":   "(*big.Rat).RatString allocates",
	"(*math/big.Rat).FloatString": "(*big.Rat).FloatString allocates",

	"(*strings.Builder).String": "(*strings.Builder).String allocates",
	"(*bytes.Buffer).String":    "(*bytes.Buffer).String allocates",
	"bytes.NewBuffer":           "bytes.NewBuffer allocates",
	"bytes.NewBufferString":     "bytes.NewBufferString allocates",
}

// scanAllocs reports every unjustified allocating operation in node's own
// body (nested literals are separate nodes) as reachable from the hot entry
// root.
func scanAllocs(pass *Pass, node *FuncNode, root *FuncNode) {
	pkg := node.Pkg
	exempt := exemptRanges(pkg, node)
	skipLits := map[*ast.CompositeLit]bool{}
	handledAppends := map[*ast.CallExpr]bool{}

	report := func(pos token.Pos, desc string) {
		if exempt.covers(pos) {
			return
		}
		if pkg.commentedWith(pos, markAlloc) {
			return
		}
		pass.Reportf(pos, "hot path via %s: %s", root.Name, desc)
	}

	walkOwn(node, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return
			}
			if lit, ok := unparen(x.X).(*ast.CompositeLit); ok {
				skipLits[lit] = true
				report(x.Pos(), fmt.Sprintf("&%s escapes to the heap", compositeName(pkg, lit)))
			}
		case *ast.CompositeLit:
			if skipLits[x] {
				return
			}
			t := typeOf(pkg, x)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				report(x.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				report(x.Pos(), "map literal allocates")
			}
		case *ast.AssignStmt:
			scanAssign(pkg, x, handledAppends, report)
		case *ast.IncDecStmt:
			if ix, ok := unparen(x.X).(*ast.IndexExpr); ok && isMapIndex(pkg, ix) {
				report(x.Pos(), "map update may grow the table")
			}
		case *ast.CallExpr:
			scanCall(pkg, node, x, handledAppends, report)
		case *ast.BinaryExpr:
			if x.Op != token.ADD {
				return
			}
			if t := typeOf(pkg, x); t != nil && isString(t) && !isConstExpr(pkg, x) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.FuncLit:
			if free := capturesVars(pkg, x); free != "" {
				report(x.Pos(), fmt.Sprintf("function literal captures %s and allocates a closure", free))
			}
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		}
	})

	// Unresolvable and known-allocating calls, from the edges.
	for _, e := range node.Edges {
		pos := e.Site.Pos()
		switch {
		case e.Kind == EdgeDynamic:
			report(pos, "call through unresolved function value (cannot prove allocation-free)")
		case e.Kind == EdgeInterface && e.Callee == nil:
			name := "interface method"
			if e.Ext != nil {
				name = e.Ext.FullName()
			}
			report(pos, fmt.Sprintf("interface call %s has no resolvable implementation (cannot prove allocation-free)", name))
		case e.Ext != nil:
			if desc, known := allocFuncs[e.Ext.FullName()]; known {
				report(pos, desc)
			}
		}
	}
}

// scanAssign flags map writes and cross-variable appends, and records
// in-place appends so scanCall does not re-flag them.
func scanAssign(pkg *Package, x *ast.AssignStmt, handled map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	for _, lhs := range x.Lhs {
		if ix, ok := unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(pkg, ix) {
			report(lhs.Pos(), "map assignment may grow the table")
		}
	}
	if len(x.Lhs) != len(x.Rhs) {
		return
	}
	for i, rhs := range x.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(pkg, call, "append") || len(call.Args) == 0 {
			continue
		}
		handled[call] = true
		if sameRef(pkg, x.Lhs[i], call.Args[0]) {
			continue // x = append(x, ...): amortized in-place growth
		}
		report(call.Pos(), "append into a different variable copies and allocates")
	}
}

// sameRef reports whether two expressions statically denote the same
// variable or field chain (x, s.buf, a.b.c).
func sameRef(pkg *Package, a, b ast.Expr) bool {
	a, b = unparen(a), unparen(b)
	switch ax := a.(type) {
	case *ast.Ident:
		bx, ok := b.(*ast.Ident)
		return ok && objectOf(pkg, ax) != nil && objectOf(pkg, ax) == objectOf(pkg, bx)
	case *ast.SelectorExpr:
		bx, ok := b.(*ast.SelectorExpr)
		return ok && ax.Sel.Name == bx.Sel.Name && sameRef(pkg, ax.X, bx.X)
	}
	return false
}

// scanCall flags builtin allocators, allocating conversions, and interface
// boxing of arguments.
func scanCall(pkg *Package, node *FuncNode, call *ast.CallExpr, handled map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	fun := unwrapCallFun(call.Fun)

	// Conversions: string <-> []byte/[]rune copy.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := typeOf(pkg, call.Args[0])
		if src != nil {
			if isString(src.Underlying()) && isByteOrRuneSlice(dst) {
				report(call.Pos(), "string to slice conversion copies and allocates")
			} else if isByteOrRuneSlice(src.Underlying()) && isString(dst) && !isConstExpr(pkg, call.Args[0]) {
				report(call.Pos(), "slice to string conversion copies and allocates")
			}
		}
		return
	}

	if id, ok := fun.(*ast.Ident); ok {
		if b, okB := pkg.Info.Uses[id].(*types.Builtin); okB {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates")
			case "new":
				report(call.Pos(), "new allocates")
			case "append":
				if !handled[call] {
					report(call.Pos(), "append outside x = append(x, ...) may copy and allocate")
				}
			}
			return
		}
	}

	// Interface boxing of arguments.
	sig, ok := typeOf(pkg, call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	nParams := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= nParams-1:
			if sl, okS := sig.Params().At(nParams - 1).Type().(*types.Slice); okS {
				pt = sl.Elem()
			}
		case i < nParams:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := typeOf(pkg, arg)
		if at == nil || isConstExpr(pkg, arg) || !boxingAllocates(at) {
			continue
		}
		report(arg.Pos(), fmt.Sprintf("passing %s to interface parameter boxes and allocates", types.TypeString(at, nil)))
	}
}

// exemptSpans are source ranges where allocation is acceptable: error-path
// returns and panic arguments.
type exemptSpans []span

type span struct{ lo, hi token.Pos }

func (e exemptSpans) covers(pos token.Pos) bool {
	for _, s := range e {
		if s.lo <= pos && pos <= s.hi {
			return true
		}
	}
	return false
}

// exemptRanges collects the error-terminal spans of node's body: return
// statements whose error result is non-nil, and panic call arguments.
// fmt.Errorf and friends on those paths are the cold, acceptable case the
// analyzer's doc promises not to flag.
func exemptRanges(pkg *Package, node *FuncNode) exemptSpans {
	var spans exemptSpans
	sig := nodeSignature(pkg, node)
	walkOwn(node, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			if sig != nil && returnsNonNilError(pkg, sig, x) {
				spans = append(spans, span{x.Pos(), x.End()})
			}
		case *ast.CallExpr:
			if id, ok := unwrapCallFun(x.Fun).(*ast.Ident); ok {
				if b, okB := pkg.Info.Uses[id].(*types.Builtin); okB && b.Name() == "panic" {
					spans = append(spans, span{x.Pos(), x.End()})
				}
			}
		}
	})
	return spans
}

func nodeSignature(pkg *Package, node *FuncNode) *types.Signature {
	if node.Obj != nil {
		sig, _ := node.Obj.Type().(*types.Signature)
		return sig
	}
	if node.Lit != nil {
		sig, _ := typeOf(pkg, node.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// returnsNonNilError reports whether ret explicitly returns a non-nil value
// in an error-typed result position.
func returnsNonNilError(pkg *Package, sig *types.Signature, ret *ast.ReturnStmt) bool {
	res := sig.Results()
	if res.Len() == 0 || len(ret.Results) != res.Len() {
		return false
	}
	for i := 0; i < res.Len(); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		if id, ok := unparen(ret.Results[i]).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}

// capturesVars returns the name of a variable the literal captures from its
// environment ("" when it captures nothing). A capture-free literal
// compiles to a static function and does not allocate.
func capturesVars(pkg *Package, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if v.Parent() == pkg.Types.Scope() {
			return true
		}
		// Declared outside the literal's extent.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v.Name()
			return false
		}
		return true
	})
	return captured
}

// compositeName renders the literal's type for a finding message.
func compositeName(pkg *Package, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return types.ExprString(lit.Type) + "{...}"
	}
	if t := typeOf(pkg, lit); t != nil {
		return types.TypeString(t, nil) + "{...}"
	}
	return "composite literal"
}

func isMapIndex(pkg *Package, ix *ast.IndexExpr) bool {
	t := typeOf(pkg, ix.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltin(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := unwrapCallFun(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func objectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// boxingAllocates reports whether converting a value of type t to an
// interface heap-allocates. Pointer-shaped values (pointers, maps,
// channels, functions, unsafe pointers) are stored directly in the
// interface word; everything else is copied to the heap.
func boxingAllocates(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer && u.Kind() != types.Invalid
	default:
		return true
	}
}
