package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MemoSafe returns the memo-safe analyzer: it certifies that every function
// annotated // sia:memoize is memoization-pure — calling it twice with the
// same arguments yields the same result and no observable side effect — by
// checking the function and everything reachable from it for:
//
//   - writes to package-level variables (directly or by calling a mutating
//     method on one)
//   - mutation of values reachable from the entry's parameters (the memo
//     key must not change under the cache's feet); mutation of locally
//     allocated values is fine and tracked by a provenance analysis
//   - nondeterminism: time, rand, I/O, channel operations, goroutines,
//     synchronization primitives
//   - map iteration order reaching the output (a range over a map whose
//     body appends or concatenates into an outer accumulator)
//   - calls that cannot be resolved (untracked function values), which
//     cannot be proven pure
//
// The analysis is optimistic in one documented way: a call result is
// assumed to be freshly allocated (owned by the caller), which matches the
// clone-then-mutate style of this codebase. Effects are summarized per
// function and propagated over the call graph to a fixpoint, so a helper
// that mutates its receiver (e.g. (*Term).AddVar) is not itself a
// violation; the violation surfaces only at a call site that feeds it
// non-owned data.
//
// An effect is justified with `// memo: <reason>` on the line or the line
// above (site level) or in the function's doc comment (decl level, blankets
// the function). Justified effects do not propagate.
func MemoSafe(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "memo-safe",
		Doc:  "certifies // sia:memoize functions are memoization-pure",
		Run:  runMemoSafe,
	}
}

func runMemoSafe(pass *Pass) {
	prog := pass.Program()
	st := prog.memoAnalysis()
	if st == nil {
		return
	}
	for _, node := range prog.Nodes {
		if node.Pkg != pass.Pkg {
			continue
		}
		for _, v := range st.viols[node] {
			pass.Reportf(v.pos, "memo-unsafe (entry %s): %s", st.from[node].Name, v.msg)
		}
	}
}

// memoIssue is one effect at a site: a violation (reason == "") or a
// justified effect.
type memoIssue struct {
	pos    token.Pos
	msg    string
	reason string
}

// memoSummary is a function's propagated effect summary. Only unjustified
// effects set bits.
type memoSummary struct {
	mutParams []bool // parameter (receiver first) may be mutated
}

type memoState struct {
	from  map[*FuncNode]*FuncNode  // memo-reachable node -> witness entry
	sums  map[*FuncNode]*memoSummary
	viols map[*FuncNode][]memoIssue // unjustified, AST order
	justs map[*FuncNode][]memoIssue // justified, AST order
}

// memoAnalysis runs the whole-program memo-safety analysis once per
// Program and caches the result. Returns nil when there are no
// // sia:memoize entries.
func (p *Program) memoAnalysis() *memoState {
	p.memoOnce.Do(func() {
		entries := p.MemoEntries()
		if len(entries) == 0 {
			return
		}
		st := &memoState{
			from:  p.reachableFrom(entries, false),
			sums:  map[*FuncNode]*memoSummary{},
			viols: map[*FuncNode][]memoIssue{},
			justs: map[*FuncNode][]memoIssue{},
		}
		// Analysis granularity is the outermost declaration: a closure's
		// effects belong to its creator, which keeps captured variables in
		// scope of one provenance analysis. A literal reachable without its
		// root (via a tracked function value) is analyzed standalone.
		var units []*FuncNode
		seen := map[*FuncNode]bool{}
		for _, n := range p.Nodes {
			if _, ok := st.from[n]; !ok {
				continue
			}
			u := n.Root()
			if _, rootReachable := st.from[u]; !rootReachable {
				u = n
			}
			if !seen[u] {
				seen[u] = true
				units = append(units, u)
			}
		}
		for _, u := range units {
			st.sums[u] = &memoSummary{mutParams: make([]bool, numParams(u))}
		}
		// Fixpoint on parameter-mutation bits.
		for changed := true; changed; {
			changed = false
			for _, u := range units {
				sc := newMemoScan(p, st, u)
				sc.run(false)
				for i, b := range sc.mutParams {
					if b && !st.sums[u].mutParams[i] {
						st.sums[u].mutParams[i] = true
						changed = true
					}
				}
			}
		}
		// Final pass: collect violations and justifications.
		for _, u := range units {
			sc := newMemoScan(p, st, u)
			sc.run(true)
			st.viols[u] = sc.viols
			st.justs[u] = sc.justs
		}
		p.memo = st
	})
	return p.memo
}

// numParams counts receiver + parameters of a unit.
func numParams(u *FuncNode) int {
	sig := unitSignature(u)
	if sig == nil {
		return 0
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

func unitSignature(u *FuncNode) *types.Signature {
	if u.Obj != nil {
		sig, _ := u.Obj.Type().(*types.Signature)
		return sig
	}
	if u.Lit != nil {
		sig, _ := typeOf(u.Pkg, u.Lit).(*types.Signature)
		return sig
	}
	return nil
}

// provenance of a local variable: the parameters it may alias, plus global
// and unknown escape bits. Empty provenance means locally owned.
type provSet struct {
	params  map[*types.Var]bool
	global  bool
	unknown bool
}

func (ps *provSet) owned() bool {
	return ps != nil && len(ps.params) == 0 && !ps.global && !ps.unknown
}

// provSource is one assignment's contribution to a variable's provenance.
type provSource struct {
	fresh   bool
	ref     *types.Var
	global  bool
	unknown bool
}

// memoScan analyzes one unit (declaration plus nested literals).
type memoScan struct {
	prog *Program
	st   *memoState
	unit *FuncNode
	pkg  *Package

	params    map[*types.Var]int // receiver/param var -> index in mutParams
	litParams map[*types.Var]bool
	prov      map[*types.Var]*provSet
	edges     map[ast.Node][]Edge

	isEntry   bool
	declJust  bool // decl-level // memo: blanket
	collect   bool
	mutParams []bool
	viols     []memoIssue
	justs     []memoIssue
}

func newMemoScan(p *Program, st *memoState, u *FuncNode) *memoScan {
	sc := &memoScan{
		prog:      p,
		st:        st,
		unit:      u,
		pkg:       u.Pkg,
		params:    map[*types.Var]int{},
		litParams: map[*types.Var]bool{},
		edges:     map[ast.Node][]Edge{},
		isEntry:   u.Memo,
		mutParams: make([]bool, numParams(u)),
	}
	for n := u; n != nil; n = n.Encl {
		if n.MemoJustified {
			sc.declJust = true
		}
	}
	sig := unitSignature(u)
	if sig != nil {
		idx := 0
		if r := sig.Recv(); r != nil {
			sc.params[r] = idx
			idx++
		}
		for i := 0; i < sig.Params().Len(); i++ {
			sc.params[sig.Params().At(i)] = idx
			idx++
		}
	}
	// Parameters of nested literals: aliasable, but not attributable to the
	// unit's own parameters.
	sc.inspectUnit(func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit == u.Lit {
			return true
		}
		if lsig, okS := typeOf(u.Pkg, lit).(*types.Signature); okS {
			for i := 0; i < lsig.Params().Len(); i++ {
				sc.litParams[lsig.Params().At(i)] = true
			}
		}
		return true
	})
	// Merge edge maps of the unit and its literals.
	addEdges := func(n *FuncNode) {
		for _, e := range n.Edges {
			sc.edges[e.Site] = append(sc.edges[e.Site], e)
		}
	}
	addEdges(u)
	for _, n := range p.Nodes {
		if n.Lit != nil && n != u && n.Root() == u.Root() && nodeInside(n, u) {
			addEdges(n)
		}
	}
	sc.solveProvenance()
	return sc
}

// nodeInside reports whether lit node n lies inside unit u's body.
func nodeInside(n, u *FuncNode) bool {
	if u.Body == nil || n.Lit == nil {
		return false
	}
	return u.Body.Pos() <= n.Lit.Pos() && n.Lit.End() <= u.Body.End()
}

// inspectUnit walks the unit's full body, including nested literals.
func (sc *memoScan) inspectUnit(visit func(ast.Node) bool) {
	if sc.unit.Body == nil {
		return
	}
	ast.Inspect(sc.unit.Body, visit)
}

// solveProvenance computes each local variable's provenance to a fixpoint.
func (sc *memoScan) solveProvenance() {
	sources := map[*types.Var][]provSource{}
	addSource := func(id *ast.Ident, src provSource) {
		obj := objectOf(sc.pkg, id)
		v, ok := obj.(*types.Var)
		if !ok || sc.isPackageLevel(v) {
			return
		}
		if _, isParam := sc.params[v]; isParam {
			return
		}
		if sc.litParams[v] {
			return
		}
		sources[v] = append(sources[v], src)
	}
	sc.inspectUnit(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ValueSpec:
			for i, name := range x.Names {
				switch {
				case len(x.Values) == 0:
					addSource(name, provSource{fresh: true}) // zero value
				case len(x.Values) == len(x.Names):
					addSource(name, sc.exprSource(x.Values[i]))
				case len(x.Values) == 1:
					// Multi-value: a call (fresh results) or unknown.
					if _, isCall := unparen(x.Values[0]).(*ast.CallExpr); isCall {
						addSource(name, provSource{fresh: true})
					} else {
						addSource(name, sc.exprSource(x.Values[0]))
					}
				}
			}
		case *ast.AssignStmt:
			switch {
			case len(x.Lhs) == len(x.Rhs):
				for i, lhs := range x.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						addSource(id, sc.exprSource(x.Rhs[i]))
					}
				}
			case len(x.Rhs) == 1:
				src := sc.exprSource(x.Rhs[0])
				if _, isCall := unparen(x.Rhs[0]).(*ast.CallExpr); isCall {
					src = provSource{fresh: true}
				}
				for _, lhs := range x.Lhs {
					if id, ok := unparen(lhs).(*ast.Ident); ok {
						addSource(id, src)
					}
				}
			}
		case *ast.RangeStmt:
			src := sc.exprSource(x.X)
			for _, e := range []ast.Expr{x.Key, x.Value} {
				if e == nil {
					continue
				}
				if id, ok := unparen(e).(*ast.Ident); ok {
					addSource(id, src)
				}
			}
		case *ast.TypeSwitchStmt:
			// `switch y := x.(type)`: y aliases x.
			if assign, ok := x.Assign.(*ast.AssignStmt); ok && len(assign.Lhs) == 1 && len(assign.Rhs) == 1 {
				if id, okID := unparen(assign.Lhs[0]).(*ast.Ident); okID {
					if ta, okTA := unparen(assign.Rhs[0]).(*ast.TypeAssertExpr); okTA {
						addSource(id, sc.exprSource(ta.X))
					}
				}
				// Each case clause redeclares y with its own object.
				for _, clause := range x.Body.List {
					cc, okCC := clause.(*ast.CaseClause)
					if !okCC {
						continue
					}
					if obj, okO := sc.pkg.Info.Implicits[cc].(*types.Var); okO {
						if ta, okTA := unparen(assign.Rhs[0]).(*ast.TypeAssertExpr); okTA {
							src := sc.exprSource(ta.X)
							if !sc.isPackageLevel(obj) {
								sources[obj] = append(sources[obj], src)
							}
						}
					}
				}
			}
		}
		return true
	})

	sc.prov = map[*types.Var]*provSet{}
	get := func(v *types.Var) *provSet {
		ps, ok := sc.prov[v]
		if !ok {
			ps = &provSet{params: map[*types.Var]bool{}}
			sc.prov[v] = ps
		}
		return ps
	}
	for v := range sc.params {
		get(v).params[v] = true
	}
	for v := range sc.litParams {
		get(v).unknown = true
	}
	for changed := true; changed; {
		changed = false
		for v, srcs := range sources {
			ps := get(v)
			for _, src := range srcs {
				switch {
				case src.fresh:
				case src.global:
					if !ps.global {
						ps.global = true
						changed = true
					}
				case src.unknown:
					if !ps.unknown {
						ps.unknown = true
						changed = true
					}
				case src.ref != nil:
					if rp, ok := sc.prov[src.ref]; ok {
						for pv := range rp.params {
							if !ps.params[pv] {
								ps.params[pv] = true
								changed = true
							}
						}
						if rp.global && !ps.global {
							ps.global = true
							changed = true
						}
						if rp.unknown && !ps.unknown {
							ps.unknown = true
							changed = true
						}
					} else if sc.isPackageLevel(src.ref) {
						if !ps.global {
							ps.global = true
							changed = true
						}
					}
					// A ref to a var with no provenance entry and no
					// sources is locally owned: contributes nothing.
				}
			}
		}
	}
}

func (sc *memoScan) isPackageLevel(v *types.Var) bool {
	return v != nil && sc.pkg.Types != nil && v.Parent() == sc.pkg.Types.Scope() ||
		v != nil && v.Pkg() != nil && v.Pkg() != sc.pkg.Types && v.Parent() == v.Pkg().Scope()
}

// exprSource classifies what a right-hand side aliases.
func (sc *memoScan) exprSource(e ast.Expr) provSource {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if x.Name == "nil" {
			return provSource{fresh: true}
		}
		switch obj := objectOf(sc.pkg, x).(type) {
		case *types.Var:
			if sc.isPackageLevel(obj) {
				return provSource{global: true}
			}
			return provSource{ref: obj}
		case *types.Func:
			return provSource{fresh: true}
		case *types.Const:
			return provSource{fresh: true}
		}
		return provSource{unknown: true}
	case *ast.BasicLit, *ast.CompositeLit, *ast.FuncLit:
		return provSource{fresh: true}
	case *ast.CallExpr:
		// Conversions preserve aliasing; real calls return fresh values
		// (documented optimism).
		if tv, ok := sc.pkg.Info.Types[unwrapCallFun(x.Fun)]; ok && tv.IsType() && len(x.Args) == 1 {
			return sc.exprSource(x.Args[0])
		}
		return provSource{fresh: true}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return sc.exprSource(x.X)
		}
		if x.Op == token.ARROW {
			return provSource{unknown: true}
		}
		return provSource{fresh: true}
	case *ast.BinaryExpr:
		return provSource{fresh: true}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.IndexListExpr, *ast.StarExpr, *ast.SliceExpr:
		return sc.rootSource(e)
	case *ast.TypeAssertExpr:
		return sc.exprSource(x.X)
	}
	return provSource{unknown: true}
}

// rootSource finds the base variable of a selector/index/deref chain.
func (sc *memoScan) rootSource(e ast.Expr) provSource {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			// Package-qualified global: pkg.Var.
			if v, ok := sc.pkg.Info.Uses[x.Sel].(*types.Var); ok && sc.isPackageLevel(v) {
				return provSource{global: true}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.Ident:
			return sc.exprSource(x)
		case *ast.CallExpr:
			return sc.exprSource(x)
		case *ast.CompositeLit:
			return provSource{fresh: true}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
				continue
			}
			return provSource{unknown: true}
		default:
			return provSource{unknown: true}
		}
	}
}

// provOf resolves a source to a provenance set.
func (sc *memoScan) provOf(src provSource) *provSet {
	switch {
	case src.fresh:
		return &provSet{params: map[*types.Var]bool{}}
	case src.global:
		return &provSet{params: map[*types.Var]bool{}, global: true}
	case src.unknown:
		return &provSet{params: map[*types.Var]bool{}, unknown: true}
	case src.ref != nil:
		if ps, ok := sc.prov[src.ref]; ok {
			return ps
		}
		if sc.isPackageLevel(src.ref) {
			return &provSet{params: map[*types.Var]bool{}, global: true}
		}
		return &provSet{params: map[*types.Var]bool{}} // owned local
	}
	return &provSet{params: map[*types.Var]bool{}, unknown: true}
}

// effect records one impure effect at pos; justification is resolved here.
func (sc *memoScan) effect(pos token.Pos, entryOnly bool, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if reason, ok := sc.pkg.justification(pos, markMemo); ok {
		if sc.collect {
			sc.justs = append(sc.justs, memoIssue{pos: pos, msg: msg, reason: reason})
		}
		return
	}
	if sc.declJust {
		if sc.collect {
			sc.justs = append(sc.justs, memoIssue{pos: pos, msg: msg, reason: sc.unit.MemoReason})
		}
		return
	}
	if entryOnly && !sc.isEntry {
		return // deferred to call sites via the summary bit
	}
	if sc.collect {
		sc.viols = append(sc.viols, memoIssue{pos: pos, msg: msg})
	}
}

// mutate handles a mutation of the value rooted at src.
func (sc *memoScan) mutate(pos token.Pos, src provSource, what string) {
	ps := sc.provOf(src)
	if ps.owned() {
		return
	}
	justified := false
	if _, ok := sc.pkg.justification(pos, markMemo); ok {
		justified = true
	}
	for pv := range ps.params {
		if idx, ok := sc.params[pv]; ok && !justified && !sc.declJust {
			sc.mutParams[idx] = true
		}
	}
	if len(ps.params) > 0 {
		names := make([]string, 0, len(ps.params))
		for pv := range ps.params {
			names = append(names, pv.Name())
		}
		sortStrings(names)
		sc.effect(pos, true, "%s may mutate parameter %s (the memo key must stay immutable)", what, strings.Join(names, ", "))
	}
	if ps.global {
		sc.effect(pos, false, "%s mutates package-level state", what)
	}
	if ps.unknown {
		sc.effect(pos, false, "%s mutates a value of unknown provenance", what)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// run performs the effect scan. With collect=false only summary bits are
// computed (fixpoint iterations); with collect=true violations and
// justifications are recorded in AST order.
func (sc *memoScan) run(collect bool) {
	sc.collect = collect
	sc.inspectUnit(func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			sc.scanAssignEffects(x)
		case *ast.IncDecStmt:
			sc.scanWriteTarget(x.X, "update")
		case *ast.SendStmt:
			sc.effect(x.Pos(), false, "channel send is scheduling-dependent")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				sc.effect(x.Pos(), false, "channel receive is scheduling-dependent")
			}
		case *ast.SelectStmt:
			sc.effect(x.Pos(), false, "select is scheduling-dependent")
		case *ast.GoStmt:
			sc.effect(x.Pos(), false, "spawning a goroutine is not memoization-pure")
		case *ast.RangeStmt:
			sc.scanMapRange(x)
		case *ast.CallExpr:
			sc.scanCallEffects(x)
		}
		return true
	})
}

// scanAssignEffects flags writes to globals and mutations through
// references on the left-hand sides.
func (sc *memoScan) scanAssignEffects(x *ast.AssignStmt) {
	for _, lhs := range x.Lhs {
		sc.scanWriteTarget(lhs, "assignment")
	}
}

func (sc *memoScan) scanWriteTarget(lhs ast.Expr, what string) {
	switch t := unparen(lhs).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if v, ok := objectOf(sc.pkg, t).(*types.Var); ok && sc.isPackageLevel(v) {
			sc.effect(t.Pos(), false, "%s writes package-level variable %s", what, v.Name())
		}
		// Rebinding a local is not a heap mutation.
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.SliceExpr:
		if sc.isValueFieldWrite(lhs) {
			return
		}
		sc.mutate(lhs.Pos(), sc.rootSource(lhs), what)
	}
}

// isValueFieldWrite reports whether lhs writes a field reached from a local
// or parameter variable through value-typed selections only. Such a write
// lands in this function's stack copy — a value receiver's `o.X = v` cannot
// be seen by the caller — so it is not a mutation of the memo key. Any
// pointer along the selection chain (Go auto-dereferences `p.X` for
// pointer p) escapes the copy and disqualifies.
func (sc *memoScan) isValueFieldWrite(lhs ast.Expr) bool {
	e := unparen(lhs)
	for {
		sel, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		t := typeOf(sc.pkg, sel.X)
		if t == nil {
			return false
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return false
		}
		e = unparen(sel.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := objectOf(sc.pkg, id).(*types.Var)
	if !ok || v == nil || sc.isPackageLevel(v) {
		return false
	}
	return true
}

// scanMapRange flags map iterations whose order can reach the output.
func (sc *memoScan) scanMapRange(x *ast.RangeStmt) {
	t := typeOf(sc.pkg, x.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	orderSink := false
	ast.Inspect(x.Body, func(n ast.Node) bool {
		if orderSink {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if call, okC := unparen(rhs).(*ast.CallExpr); okC && isBuiltin(sc.pkg, call, "append") {
				orderSink = true
			}
		}
		if as.Tok == token.ADD_ASSIGN {
			if lt := typeOf(sc.pkg, as.Lhs[0]); lt != nil && isString(lt) {
				orderSink = true
			}
		}
		return true
	})
	if orderSink {
		sc.effect(x.Pos(), false, "map iteration order reaches an ordered accumulator (append/concat inside range over map)")
	}
}

// nondetFuncs are external calls that break determinism on their own.
var nondetFuncs = map[string]string{
	"time.Now":       "reads the clock",
	"time.Since":     "reads the clock",
	"time.Until":     "reads the clock",
	"time.After":     "reads the clock",
	"time.Tick":      "reads the clock",
	"time.Sleep":     "depends on the clock",
	"time.NewTimer":  "depends on the clock",
	"time.NewTicker": "depends on the clock",
}

// nondetPkgs are external packages whose calls are treated as I/O or
// entropy: any call into them is a violation.
var nondetPkgs = map[string]string{
	"math/rand":    "randomness",
	"math/rand/v2": "randomness",
	"crypto/rand":  "randomness",
	"os":           "operating-system state",
	"os/exec":      "operating-system state",
	"io":           "I/O",
	"io/fs":        "I/O",
	"bufio":        "I/O",
	"net":          "network I/O",
	"net/http":     "network I/O",
	"syscall":      "operating-system state",
}

// bigReadOnly are math/big methods that do not mutate their receiver.
var bigReadOnly = map[string]bool{
	"Cmp": true, "CmpAbs": true, "Sign": true, "String": true, "Text": true,
	"RatString": true, "FloatString": true, "Num": true, "Denom": true,
	"IsInt": true, "Int64": true, "Uint64": true, "IsInt64": true,
	"IsUint64": true, "Float64": true, "Float32": true, "BitLen": true,
	"Bit": true, "Bits": true, "Bytes": true, "ProbablyPrime": true,
	"MarshalText": true, "MarshalJSON": true, "Format": true, "Append": true,
	"AppendText": true, "TrailingZeroBits": true, "Acc": true, "Prec": true,
	"MinPrec": true, "Mode": true, "Signbit": true, "IsInf": true,
	"MantExp": true,
}

// extMutatesArg0 are external functions that mutate their first argument.
var extMutatesArg0 = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Strings": true, "sort.Ints": true,
	"fmt.Fprintf": true, "fmt.Fprint": true, "fmt.Fprintln": true,
}

// scanCallEffects resolves a call site's effects: builtins that mutate,
// nondeterministic externals, mutating externals, summarized in-module
// callees, and unresolvable targets.
func (sc *memoScan) scanCallEffects(call *ast.CallExpr) {
	fun := unwrapCallFun(call.Fun)

	// Mutating builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, okB := sc.pkg.Info.Uses[id].(*types.Builtin); okB {
			switch b.Name() {
			case "delete", "clear":
				if len(call.Args) > 0 {
					sc.mutate(call.Pos(), sc.rootSource(call.Args[0]), b.Name())
				}
			case "copy":
				if len(call.Args) > 0 {
					sc.mutate(call.Pos(), sc.rootSource(call.Args[0]), "copy")
				}
			}
			return
		}
	}

	for _, e := range sc.edges[ast.Node(call)] {
		switch {
		case e.Kind == EdgeDynamic:
			sc.effect(call.Pos(), false, "call through unresolved function value (cannot prove purity)")
		case e.Callee != nil:
			sc.checkSummarizedCall(call, e.Callee)
		case e.Ext != nil:
			sc.checkExternalCall(call, e.Ext)
		}
	}
}

// checkSummarizedCall applies an in-module callee's summary at this site.
func (sc *memoScan) checkSummarizedCall(call *ast.CallExpr, callee *FuncNode) {
	unit := callee.Root()
	sum := sc.st.sums[unit]
	if sum == nil || callee != unit {
		// Effects of literals are attributed to their creating unit; the
		// call itself adds nothing beyond them.
		return
	}
	sig := unitSignature(unit)
	if sig == nil {
		return
	}
	hasRecv := sig.Recv() != nil
	for idx, mutated := range sum.mutParams {
		if !mutated {
			continue
		}
		arg := sc.argExpr(call, idx, hasRecv)
		if arg == nil {
			continue
		}
		sc.mutate(call.Pos(), sc.rootSource(arg), fmt.Sprintf("call to %s", unit.Name))
	}
}

// argExpr maps a summary parameter index to the expression at the call
// site; index 0 is the receiver for methods.
func (sc *memoScan) argExpr(call *ast.CallExpr, idx int, hasRecv bool) ast.Expr {
	if hasRecv {
		if idx == 0 {
			if selx, ok := unwrapCallFun(call.Fun).(*ast.SelectorExpr); ok {
				return selx.X
			}
			return nil
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// checkExternalCall classifies a call that leaves the loaded packages.
func (sc *memoScan) checkExternalCall(call *ast.CallExpr, ext *types.Func) {
	full := ext.FullName()
	if desc, ok := nondetFuncs[full]; ok {
		sc.effect(call.Pos(), false, "%s %s", full, desc)
		return
	}
	if pkg := ext.Pkg(); pkg != nil {
		if desc, ok := nondetPkgs[pkg.Path()]; ok {
			sc.effect(call.Pos(), false, "call into %s (%s)", pkg.Path(), desc)
			return
		}
		if strings.HasPrefix(pkg.Path(), "sync") {
			sc.effect(call.Pos(), false, "synchronization primitive %s is not memoization-pure", full)
			return
		}
		if pkg.Path() == "math/big" && strings.HasPrefix(full, "(*math/big.") && !bigReadOnly[ext.Name()] {
			if selx, ok := unwrapCallFun(call.Fun).(*ast.SelectorExpr); ok {
				sc.mutate(call.Pos(), sc.rootSource(selx.X), full)
			}
			return
		}
	}
	if extMutatesArg0[full] && len(call.Args) > 0 {
		sc.mutate(call.Pos(), sc.rootSource(call.Args[0]), full)
		return
	}
	// Everything else external (strings, strconv, sha256 sums, read-only
	// big methods, builders on owned receivers via their own packages) is
	// assumed pure on its arguments — documented optimism.
}
