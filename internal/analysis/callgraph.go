package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// This file builds the interprocedural layer of sialint: a call graph over
// every loaded package, computed once per run and shared by the analyzers
// that need whole-program reachability (alloc-budget, memo-safe).
//
// Resolution strategy, cheapest first:
//
//   - Direct calls to named functions and methods resolve statically.
//   - Interface method calls resolve with class-hierarchy analysis (CHA):
//     the callees are the matching methods of every concrete type in the
//     loaded packages that implements the interface. This over-approximates
//     (no per-callsite points-to), which is the safe direction for both
//     analyzers built on top.
//   - Calls through function-typed variables resolve when every assignment
//     to the variable (including struct-literal field values) is a named
//     function or function literal and the variable's address is never
//     taken; otherwise the call site is a dynamic edge.
//   - Function literals are call-graph nodes of their own, linked to their
//     creator by a closure edge, so code inside a closure created on a hot
//     path is analyzed as part of that path.
//
// Annotations read from function doc comments:
//
//	// sia:hotpath   — entry point for the alloc-budget analyzer
//	// sia:memoize   — entry point for the memo-safe analyzer
//	// alloc: <why>  — decl-level: every allocation in this function is
//	//                 justified (site-level escapes use the same marker on
//	//                 or above the offending line)
//	// memo: <why>   — decl-level counterpart for memo-safe
const (
	markHotPath = "sia:hotpath"
	markMemoize = "sia:memoize"
	markAlloc   = "alloc:"
	markMemo    = "memo:"
)

// EdgeKind classifies how a call site was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call to a named function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is an interface method call resolved by CHA; one edge
	// per candidate implementation.
	EdgeInterface
	// EdgeFuncValue is a call through a function-typed variable whose
	// assignments were all tracked to named functions or literals.
	EdgeFuncValue
	// EdgeClosure links a function to a literal it creates (not a call; the
	// literal may run later, so reachability must include it).
	EdgeClosure
	// EdgeDynamic is a call the graph cannot resolve: a function value with
	// untracked assignments, a call of a call result, a method value, etc.
	EdgeDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeFuncValue:
		return "funcvalue"
	case EdgeClosure:
		return "closure"
	default:
		return "dynamic"
	}
}

// Edge is one outgoing resolution at a call site (or literal creation site).
type Edge struct {
	Site ast.Node // *ast.CallExpr, or *ast.FuncLit for closure edges
	Kind EdgeKind
	// Callee is the in-module target; nil for dynamic edges and for calls
	// that leave the loaded packages (then Ext names the external target).
	Callee *FuncNode
	Ext    *types.Func
	// Terminal marks a call site inside an error-terminal region — a return
	// statement with a non-nil error result, or a panic argument. Such code
	// runs at most once per failure, so hot-path reachability does not
	// traverse it (an err.Error() in a panic message must not drag every
	// error type's formatting code into the allocation budget).
	Terminal bool
}

// FuncNode is one function, method, or function literal in the call graph.
type FuncNode struct {
	Pkg  *Package
	Obj  *types.Func   // nil for literals
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declared functions
	Encl *FuncNode     // for literals: the creating function
	Name string        // qualified display name, e.g. "sia/internal/smt.(*Solver).eliminateInt"
	Body *ast.BlockStmt
	Edges []Edge

	Hot  bool // carries // sia:hotpath
	Memo bool // carries // sia:memoize

	AllocJustified bool   // decl-level // alloc: escape
	AllocReason    string // text after the marker
	MemoJustified  bool   // decl-level // memo: escape
	MemoReason     string
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Root returns the outermost declared function enclosing n (n itself when it
// is a declaration).
func (n *FuncNode) Root() *FuncNode {
	for n.Encl != nil {
		n = n.Encl
	}
	return n
}

// Program is the whole-program view: every package's call-graph nodes in a
// deterministic order, plus the indexes analyzers query.
type Program struct {
	Pkgs  []*Package
	Nodes []*FuncNode // deterministic: package order, then position

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode

	// concrete named types (per package order) considered by CHA.
	concrete []types.Type

	hotOnce sync.Once
	hotFrom map[*FuncNode]*FuncNode // reachable node -> witness hot entry

	memoOnce sync.Once
	memo     *memoState // memo-safety results, built by memoAnalysis

	goroOnce sync.Once
	goro     *goroState // goroutine-leak results, built by goroAnalysis

	atomicOnce sync.Once
	atomicMix  *atomicState // atomic-mix results, built by atomicAnalysis
}

// NodeOf returns the node for a declared function or method (following
// generic instantiations back to their origin), or nil.
func (p *Program) NodeOf(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return p.byObj[fn]
}

// LitNode returns the node for a function literal, or nil.
func (p *Program) LitNode(lit *ast.FuncLit) *FuncNode { return p.byLit[lit] }

// HotEntries returns the nodes annotated // sia:hotpath, in program order.
func (p *Program) HotEntries() []*FuncNode {
	var out []*FuncNode
	for _, n := range p.Nodes {
		if n.Hot {
			out = append(out, n)
		}
	}
	return out
}

// MemoEntries returns the nodes annotated // sia:memoize, in program order.
func (p *Program) MemoEntries() []*FuncNode {
	var out []*FuncNode
	for _, n := range p.Nodes {
		if n.Memo {
			out = append(out, n)
		}
	}
	return out
}

// HotReachable maps every node reachable from a // sia:hotpath entry to a
// witness entry (the first, in program order, that reaches it). Traversal
// follows static, interface, funcvalue, and closure edges, but not edges
// whose call site is error-terminal (those paths are cold by definition);
// dynamic edges have no callee to follow and are instead reported by
// alloc-budget.
func (p *Program) HotReachable() map[*FuncNode]*FuncNode {
	p.hotOnce.Do(func() {
		p.hotFrom = p.reachableFrom(p.HotEntries(), true)
	})
	return p.hotFrom
}

// ReachableFrom returns the nodes reachable from the given entries (which
// are included), each mapped to the first entry that reaches it. Unlike
// HotReachable it follows error-terminal edges: memo-safety cares about
// effects on every path, including failure paths.
func (p *Program) ReachableFrom(entries []*FuncNode) map[*FuncNode]*FuncNode {
	return p.reachableFrom(entries, false)
}

func (p *Program) reachableFrom(entries []*FuncNode, skipTerminal bool) map[*FuncNode]*FuncNode {
	from := make(map[*FuncNode]*FuncNode)
	for _, entry := range entries {
		if _, ok := from[entry]; ok {
			continue
		}
		queue := []*FuncNode{entry}
		from[entry] = entry
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, e := range n.Edges {
				if e.Callee == nil || (skipTerminal && e.Terminal) {
					continue
				}
				if _, ok := from[e.Callee]; !ok {
					from[e.Callee] = entry
					queue = append(queue, e.Callee)
				}
			}
		}
	}
	return from
}

// BuildProgram constructs the call graph over the given packages.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:  pkgs,
		byObj: map[*types.Func]*FuncNode{},
		byLit: map[*ast.FuncLit]*FuncNode{},
	}
	p.collectNodes()
	p.collectConcreteTypes()
	fv := p.trackFuncValues()
	for _, n := range p.Nodes {
		if n.Body != nil && n.Lit == nil {
			p.resolveBody(n, fv)
		}
	}
	// Literal bodies resolve after declared bodies so that every literal
	// node already exists (collectNodes guarantees this anyway, but the
	// split keeps node order independent of resolution order).
	for _, n := range p.Nodes {
		if n.Body != nil && n.Lit != nil {
			p.resolveBody(n, fv)
		}
	}
	return p
}

// collectNodes creates a FuncNode per declared function and per function
// literal, in deterministic (package, position) order.
func (p *Program) collectNodes() {
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &FuncNode{
					Pkg:  pkg,
					Obj:  obj,
					Decl: fd,
					Name: declName(pkg, fd),
					Body: fd.Body,
				}
				readAnnotations(node, fd.Doc)
				if obj != nil {
					p.byObj[obj] = node
				}
				p.Nodes = append(p.Nodes, node)
				if fd.Body != nil {
					p.collectLits(pkg, node, fd.Body)
				}
			}
		}
	}
}

// collectLits creates nodes for the function literals directly or indirectly
// inside body, attributing each to its nearest enclosing function node.
// ast.Inspect is pre-order, so an enclosing literal's node always exists
// before the literals inside it are reached.
func (p *Program) collectLits(pkg *Package, encl *FuncNode, body ast.Node) {
	var lits []*FuncNode // created in this declaration, in pre-order
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		parent := encl
		for i := len(lits) - 1; i >= 0; i-- {
			if lits[i].Lit.Pos() <= lit.Pos() && lit.End() <= lits[i].Lit.End() {
				parent = lits[i]
				break
			}
		}
		node := &FuncNode{
			Pkg:  pkg,
			Lit:  lit,
			Encl: parent,
			Name: fmt.Sprintf("%s$lit@%s", parent.Name, shortPos(pkg, lit.Pos())),
			Body: lit.Body,
		}
		p.byLit[lit] = node
		p.Nodes = append(p.Nodes, node)
		lits = append(lits, node)
		return true
	})
}

// declName renders a qualified display name for a function declaration.
func declName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Path + "." + fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	if strings.HasPrefix(recv, "*") {
		return fmt.Sprintf("%s.(*%s).%s", pkg.Path, strings.TrimPrefix(recv, "*"), fd.Name.Name)
	}
	return fmt.Sprintf("%s.%s.%s", pkg.Path, recv, fd.Name.Name)
}

func shortPos(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("L%d", p.Line)
}

// readAnnotations parses the sia markers out of a doc comment.
func readAnnotations(node *FuncNode, doc *ast.CommentGroup) {
	if doc == nil {
		return
	}
	for i, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		switch {
		case strings.HasPrefix(text, markHotPath):
			node.Hot = true
		case strings.HasPrefix(text, markMemoize):
			node.Memo = true
		case strings.HasPrefix(text, markAlloc):
			node.AllocJustified = true
			node.AllocReason = joinReason(doc.List, i, strings.TrimSpace(strings.TrimPrefix(text, markAlloc)))
		case strings.HasPrefix(text, markMemo):
			node.MemoJustified = true
			node.MemoReason = joinReason(doc.List, i, strings.TrimSpace(strings.TrimPrefix(text, markMemo)))
		}
	}
}

// joinReason extends a marker's first reason line with the continuation
// comment lines that follow it in the group, stopping at the next marker or
// a blank line, so multi-line justifications survive into reports intact.
func joinReason(list []*ast.Comment, i int, first string) string {
	parts := []string{first}
	for j := i + 1; j < len(list); j++ {
		text := strings.TrimSpace(strings.TrimPrefix(list[j].Text, "//"))
		if text == "" || isMarkerLine(text) {
			break
		}
		parts = append(parts, text)
	}
	return strings.TrimSpace(strings.Join(parts, " "))
}

func isMarkerLine(text string) bool {
	return strings.HasPrefix(text, markHotPath) || strings.HasPrefix(text, markMemoize) ||
		strings.HasPrefix(text, markAlloc) || strings.HasPrefix(text, markMemo)
}

// collectConcreteTypes gathers every non-interface named type declared in
// the loaded packages; CHA checks each against the interface at a call site.
func (p *Program) collectConcreteTypes() {
	for _, pkg := range p.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				continue
			}
			p.concrete = append(p.concrete, named)
		}
	}
}

// chaTargets returns the implementations of iface's method name across the
// loaded packages' concrete types, in deterministic order.
func (p *Program) chaTargets(iface *types.Interface, name string) []*FuncNode {
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	for _, ct := range p.concrete {
		var impl types.Type
		switch {
		case types.Implements(ct, iface):
			impl = ct
		case types.Implements(types.NewPointer(ct), iface):
			impl = types.NewPointer(ct)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := p.NodeOf(fn); node != nil && !seen[node] {
			seen[node] = true
			out = append(out, node)
		}
	}
	return out
}

// funcValueInfo records what a function-typed variable can hold.
type funcValueInfo struct {
	targets []*FuncNode
	unknown bool // address taken, untracked assignment, parameter, ...
}

// trackFuncValues scans every package for assignments to function-typed
// variables (including struct-literal field values) and classifies each
// variable as fully tracked or unknown.
func (p *Program) trackFuncValues() map[*types.Var]*funcValueInfo {
	fv := map[*types.Var]*funcValueInfo{}
	get := func(v *types.Var) *funcValueInfo {
		info, ok := fv[v]
		if !ok {
			info = &funcValueInfo{}
			fv[v] = info
		}
		return info
	}
	isFuncVar := func(obj types.Object) (*types.Var, bool) {
		v, ok := obj.(*types.Var)
		if !ok || v.Type() == nil {
			return nil, false
		}
		if _, ok := v.Type().Underlying().(*types.Signature); !ok {
			return nil, false
		}
		return v, true
	}
	record := func(pkg *Package, v *types.Var, rhs ast.Expr) {
		info := get(v)
		rhs = unparen(rhs)
		switch x := rhs.(type) {
		case *ast.FuncLit:
			if node := p.byLit[x]; node != nil {
				info.targets = append(info.targets, node)
				return
			}
		case *ast.Ident:
			if x.Name == "nil" {
				return
			}
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				if node := p.NodeOf(fn); node != nil {
					info.targets = append(info.targets, node)
					return
				}
			}
		case *ast.SelectorExpr:
			if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
				if node := p.NodeOf(fn); node != nil {
					info.targets = append(info.targets, node)
					return
				}
			}
		}
		info.unknown = true
	}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.ValueSpec:
					for i, name := range x.Names {
						v, ok := isFuncVar(pkg.Info.Defs[name])
						if !ok {
							continue
						}
						if i < len(x.Values) && len(x.Values) == len(x.Names) {
							record(pkg, v, x.Values[i])
						} else if len(x.Values) > 0 {
							get(v).unknown = true // multi-value unpacking
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						id, ok := unparen(lhs).(*ast.Ident)
						if !ok {
							continue
						}
						obj := pkg.Info.Defs[id]
						if obj == nil {
							obj = pkg.Info.Uses[id]
						}
						v, ok := isFuncVar(obj)
						if !ok {
							continue
						}
						if len(x.Lhs) == len(x.Rhs) {
							record(pkg, v, x.Rhs[i])
						} else {
							get(v).unknown = true
						}
					}
				case *ast.UnaryExpr:
					if x.Op != token.AND {
						return true
					}
					if id, ok := unparen(x.X).(*ast.Ident); ok {
						if v, ok := isFuncVar(pkg.Info.Uses[id]); ok {
							get(v).unknown = true
						}
					}
				case *ast.CompositeLit:
					st, ok := typeOf(pkg, x).(*types.Struct)
					if !ok {
						if named, okN := typeOf(pkg, x).(*types.Named); okN {
							st, ok = named.Underlying().(*types.Struct)
						}
					}
					if !ok || st == nil {
						return true
					}
					for i, elt := range x.Elts {
						if kv, okKV := elt.(*ast.KeyValueExpr); okKV {
							id, okID := kv.Key.(*ast.Ident)
							if !okID {
								continue
							}
							if v, okV := isFuncVar(pkg.Info.Uses[id]); okV {
								record(pkg, v, kv.Value)
							}
							continue
						}
						// Positional struct literal: field i.
						if i < st.NumFields() {
							if v, okV := isFuncVar(st.Field(i)); okV {
								record(pkg, v, elt)
							}
						}
					}
				case *ast.FuncType:
					// Parameters and results of function types are assigned
					// by calls the tracker does not see.
					for _, fl := range fieldVars(pkg, x) {
						get(fl).unknown = true
					}
				}
				return true
			})
		}
	}
	return fv
}

// fieldVars returns the declared parameter/result variables of a FuncType
// that have function type.
func fieldVars(pkg *Package, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
						out = append(out, v)
					}
				}
			}
		}
	}
	collect(ft.Params)
	collect(ft.Results)
	return out
}

// resolveBody resolves every call site directly inside node's body (nested
// literals resolve into their own nodes) and records closure-creation edges.
// Call edges originating inside error-terminal regions are marked Terminal.
func (p *Program) resolveBody(node *FuncNode, fv map[*types.Var]*funcValueInfo) {
	pkg := node.Pkg
	exempt := exemptRanges(pkg, node)
	walkOwn(node, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.FuncLit:
			if ln := p.byLit[x]; ln != nil {
				node.Edges = append(node.Edges, Edge{Site: x, Kind: EdgeClosure, Callee: ln})
			}
		case *ast.CallExpr:
			if edges, ok := p.resolveCall(pkg, x, fv); ok {
				if exempt.covers(x.Pos()) {
					for i := range edges {
						edges[i].Terminal = true
					}
				}
				node.Edges = append(node.Edges, edges...)
			}
		}
	})
}

// walkOwn visits the nodes of fn's body that belong to fn itself, skipping
// the bodies of nested function literals (their nodes own those).
func walkOwn(fn *FuncNode, visit func(ast.Node)) {
	if fn.Body == nil {
		return
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit != fn.Lit {
			visit(lit) // the creation site belongs to fn; the body does not
			return false
		}
		visit(n)
		return true
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		return walk(n)
	})
}

// resolveCall classifies one call site. The second result is false for
// non-call CallExprs (type conversions and builtins), which produce no edge.
func (p *Program) resolveCall(pkg *Package, call *ast.CallExpr, fv map[*types.Var]*funcValueInfo) ([]Edge, bool) {
	fun := unwrapCallFun(call.Fun)

	// Type conversions: T(x) where T is a type.
	if tv, ok := pkg.Info.Types[fun]; ok && tv.IsType() {
		return nil, false
	}

	switch x := fun.(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[x].(type) {
		case *types.Builtin:
			return nil, false
		case *types.Func:
			return []Edge{p.staticEdge(call, obj)}, true
		case *types.Var:
			return p.varEdges(call, obj, fv), true
		case nil:
			// conversions to local named types land here via Types above;
			// anything else unresolved is dynamic.
			return []Edge{{Site: call, Kind: EdgeDynamic}}, true
		default:
			return []Edge{{Site: call, Kind: EdgeDynamic}}, true
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				recv := sel.Recv()
				if iface, okI := recv.Underlying().(*types.Interface); okI {
					targets := p.chaTargets(iface, x.Sel.Name)
					if len(targets) == 0 {
						fn, _ := sel.Obj().(*types.Func)
						return []Edge{{Site: call, Kind: EdgeInterface, Ext: fn}}, true
					}
					edges := make([]Edge, 0, len(targets))
					for _, t := range targets {
						edges = append(edges, Edge{Site: call, Kind: EdgeInterface, Callee: t})
					}
					return edges, true
				}
				if fn, okF := sel.Obj().(*types.Func); okF {
					return []Edge{p.staticEdge(call, fn)}, true
				}
			case types.FieldVal:
				// Calling a function-typed struct field.
				if v, okV := sel.Obj().(*types.Var); okV {
					return p.varEdges(call, v, fv), true
				}
			}
			return []Edge{{Site: call, Kind: EdgeDynamic}}, true
		}
		// Package-qualified identifier: pkg.F(...).
		switch obj := pkg.Info.Uses[x.Sel].(type) {
		case *types.Func:
			return []Edge{p.staticEdge(call, obj)}, true
		case *types.Var:
			return p.varEdges(call, obj, fv), true
		case *types.TypeName:
			return nil, false // conversion through a qualified type
		case *types.Builtin:
			return nil, false // e.g. unsafe builtins
		}
		return []Edge{{Site: call, Kind: EdgeDynamic}}, true
	case *ast.FuncLit:
		if node := p.byLit[x]; node != nil {
			return []Edge{{Site: call, Kind: EdgeStatic, Callee: node}}, true
		}
		return []Edge{{Site: call, Kind: EdgeDynamic}}, true
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.StarExpr, *ast.InterfaceType, *ast.StructType, *ast.FuncType:
		return nil, false // conversions to composite type literals
	}
	return []Edge{{Site: call, Kind: EdgeDynamic}}, true
}

// staticEdge builds a static edge, resolving in-module targets to nodes.
func (p *Program) staticEdge(call *ast.CallExpr, fn *types.Func) Edge {
	if node := p.NodeOf(fn); node != nil {
		return Edge{Site: call, Kind: EdgeStatic, Callee: node}
	}
	return Edge{Site: call, Kind: EdgeStatic, Ext: fn}
}

// varEdges builds the edges for a call through a function-typed variable:
// one funcvalue edge per tracked target when every assignment was tracked,
// a single dynamic edge otherwise.
func (p *Program) varEdges(call *ast.CallExpr, v *types.Var, fv map[*types.Var]*funcValueInfo) []Edge {
	info := fv[v]
	if info == nil || info.unknown || len(info.targets) == 0 {
		return []Edge{{Site: call, Kind: EdgeDynamic}}
	}
	sort.Slice(info.targets, func(i, j int) bool { return info.targets[i].Name < info.targets[j].Name })
	edges := make([]Edge, 0, len(info.targets))
	seen := map[*FuncNode]bool{}
	for _, t := range info.targets {
		if seen[t] {
			continue
		}
		seen[t] = true
		edges = append(edges, Edge{Site: call, Kind: EdgeFuncValue, Callee: t})
	}
	return edges
}

// unwrapCallFun strips parens and generic instantiation indexes from a call
// target expression.
func unwrapCallFun(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return e
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// Shared carries state built once per Run/RunParallel invocation and reused
// across analyzers and packages. The program builds lazily under a
// sync.Once, so runs that enable no interprocedural analyzer never pay for
// the call graph.
type Shared struct {
	once sync.Once
	prog *Program
}

// ProgramFor returns the call graph over all, building it on first use.
func (s *Shared) ProgramFor(all []*Package) *Program {
	s.once.Do(func() { s.prog = BuildProgram(all) })
	return s.prog
}
