package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"
	"strings"
)

// NoPanicInLibrary restricts panics in library packages (the configured
// path prefixes, by default sia/internal/...) to unreachable-dispatch
// panics: the argument must be a message that identifies its origin by
// starting with "<package>: " (a string literal, a string concatenation, or
// a fmt.Sprintf/fmt.Errorf whose format does). Anything else — panic(err),
// panic on a reachable input-dependent path — must be converted to a
// returned error. The convention makes every allowed panic greppable and
// self-attributing, and stops real failure paths from hiding behind a
// panic in code that serves traffic.
func NoPanicInLibrary(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "no-panic",
		Doc:  "library panics must be unreachable-dispatch panics prefixed with the package name",
		Run: func(pass *Pass) {
			if !hasAnyPrefix(pass.Pkg.Path, cfg.LibraryPrefixes) {
				return
			}
			prefixes := append([]string{pass.Pkg.Name}, cfg.ExtraPanicPrefixes...)
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) != 1 {
						return true
					}
					if !pass.isBuiltin(call.Fun, "panic") {
						return true
					}
					if !pass.panicMessageHasPrefix(call.Args[0], prefixes) {
						pass.Reportf(call.Pos(),
							"panic in library package %s must carry a %q-prefixed dispatch message or be converted to a returned error",
							pass.Pkg.Path, pass.Pkg.Name+": ")
					}
					return true
				})
			}
		},
	}
}

func hasAnyPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// isBuiltin reports whether fun denotes the named predeclared function.
func (pass *Pass) isBuiltin(fun ast.Expr, name string) bool {
	ident, ok := fun.(*ast.Ident)
	if !ok || ident.Name != name {
		return false
	}
	obj, ok := pass.Pkg.Info.Uses[ident]
	if !ok {
		return false
	}
	_, isBuiltin := obj.(*types.Builtin)
	return isBuiltin
}

// panicMessageHasPrefix reports whether the panic argument is a message
// whose leading string literal starts with any of "<prefix>:".
func (pass *Pass) panicMessageHasPrefix(arg ast.Expr, prefixes []string) bool {
	lit := ""
	if tv, ok := pass.Pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		lit = constant.StringVal(tv.Value)
	} else {
		lit = leadingStringLiteral(arg)
	}
	if lit == "" {
		return false
	}
	for _, p := range prefixes {
		if strings.HasPrefix(lit, p+":") {
			return true
		}
	}
	return false
}

// leadingStringLiteral digs out the leftmost string literal of a panic
// message: a plain literal, the left end of a + concatenation chain, or the
// format argument of a call such as fmt.Sprintf or fmt.Errorf.
func leadingStringLiteral(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.BasicLit:
		s, err := strconv.Unquote(x.Value)
		if err != nil {
			return ""
		}
		return s
	case *ast.BinaryExpr:
		return leadingStringLiteral(x.X)
	case *ast.ParenExpr:
		return leadingStringLiteral(x.X)
	case *ast.CallExpr:
		if len(x.Args) == 0 {
			return ""
		}
		return leadingStringLiteral(x.Args[0])
	}
	return ""
}
