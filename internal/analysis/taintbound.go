package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// TaintBound tracks request-derived values through the serving tier: any
// value read off a wire-request struct (the configured TaintSources,
// `internal/serve/api` request types by default) is tainted, and tainted
// values must not reach a resource bound — a context timeout, a make()
// size, a loop bound, or a solver Options field — without first passing a
// recognized clamp or validator. A hostile tenant controls every byte of
// those structs; an unclamped `req.TimeoutMS` is a tenant-chosen deadline
// and an unclamped `req.MaxIterations` is a tenant-chosen CPU budget.
//
// Taint propagates through assignments, conversions, arithmetic,
// len/cap, and composite literals, following statements in source order
// (function literals are walked inline — closures in the serving tier
// run on the request path). Taint is cleared by:
//
//   - assigning a clean value (which is how the module's clamp idiom
//     `if d > max { d = max }` is recognized: the true branch overwrites
//     the tainted variable with the cap);
//   - calling a configured sanitizer (Options.Validate, api.BuildOptions,
//     api.BuildSchema by default) — the result is clean and a method
//     receiver is scrubbed;
//   - the min/max builtins (clamping against a constant cap);
//   - any other call's result (callees are trusted to bound what they
//     return; the sweep runs the analyzer over every serving package, so
//     a callee that forwards taint into a sink is caught at its own body).
//
// Sinks: context.WithTimeout/WithDeadline duration arguments, make()
// length/capacity arguments, for-loop conditions, and assignments or
// composite literals writing into the configured TaintBoundTypes
// (sia/internal/core.Options by default). Escape with `// taint:
// <reason>` on the offending statement when the flow is bounded by
// something the analyzer cannot see (an http.MaxBytesReader cap upstream
// of a decoded slice, for example).
func TaintBound(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "taint-bound",
		Doc:  "request-derived values must be clamped/validated before becoming timeouts, budgets, or allocation sizes",
		Run: func(pass *Pass) {
			if !stringIn(pass.Pkg.Path, cfg.TaintPackages) {
				return
			}
			for _, file := range pass.Pkg.Files {
				for _, decl := range file.Decls {
					fn, ok := decl.(*ast.FuncDecl)
					if !ok || fn.Body == nil {
						continue
					}
					w := &taintWalker{
						pass:     pass,
						tainted:  map[types.Object]bool{},
						reported: map[token.Pos]bool{},
					}
					w.walkStmt(fn.Body)
				}
			}
		},
	}
}

// taintWalker carries the per-function taint state. One walker runs per
// top-level function; nested literals share it.
type taintWalker struct {
	pass     *Pass
	tainted  map[types.Object]bool
	reported map[token.Pos]bool
}

func (w *taintWalker) report(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	if reason, ok := w.pass.Pkg.justification(pos, "taint:"); ok && reason != "" {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// walkStmt processes one statement: sink checks on its expressions, then
// taint-set updates, then substatements in source order. Loop bodies are
// walked twice so taint introduced late in the body reaches uses early in
// the next iteration.
func (w *taintWalker) walkStmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			w.walkStmt(sub)
		}
	case *ast.ExprStmt:
		w.checkExpr(x.X)
		w.scrubSanitizedReceivers(x.X)
	case *ast.AssignStmt:
		w.walkAssign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						t := false
						if i < len(vs.Values) {
							w.checkExpr(vs.Values[i])
							t = w.exprTainted(vs.Values[i])
						}
						w.setIdentTaint(name, t)
					}
				}
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.checkExpr(x.Cond)
		w.walkStmt(x.Body)
		if x.Else != nil {
			w.walkStmt(x.Else)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		if x.Cond != nil {
			w.checkExpr(x.Cond)
			if w.exprTainted(x.Cond) {
				w.report(x.Pos(), "loop bound derived from request input without a clamp; cap it or justify with // taint:")
			}
		}
		for i := 0; i < 2; i++ {
			w.walkStmt(x.Body)
			if x.Post != nil {
				w.walkStmt(x.Post)
			}
		}
	case *ast.RangeStmt:
		// Ranging over request data is bounded by the data already
		// decoded; the key/value views inherit its taint.
		w.checkExpr(x.X)
		t := w.exprTainted(x.X)
		if x.Key != nil {
			if id, ok := x.Key.(*ast.Ident); ok {
				w.setIdentTaint(id, false) // indexes are bounded
			}
		}
		if x.Value != nil {
			if id, ok := x.Value.(*ast.Ident); ok {
				w.setIdentTaint(id, t)
			}
		}
		for i := 0; i < 2; i++ {
			w.walkStmt(x.Body)
		}
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		if x.Tag != nil {
			w.checkExpr(x.Tag)
		}
		w.walkStmt(x.Body)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init)
		}
		w.walkStmt(x.Body)
	case *ast.CaseClause:
		for _, e := range x.List {
			w.checkExpr(e)
		}
		for _, sub := range x.Body {
			w.walkStmt(sub)
		}
	case *ast.SelectStmt:
		w.walkStmt(x.Body)
	case *ast.CommClause:
		if x.Comm != nil {
			w.walkStmt(x.Comm)
		}
		for _, sub := range x.Body {
			w.walkStmt(sub)
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			w.checkExpr(e)
		}
	case *ast.GoStmt:
		w.checkExpr(x.Call)
	case *ast.DeferStmt:
		w.checkExpr(x.Call)
	case *ast.SendStmt:
		w.checkExpr(x.Value)
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt)
	case *ast.IncDecStmt:
		// x++ keeps x's taint.
	}
}

// walkAssign checks RHS sinks, then moves taint across the assignment:
// each LHS target becomes tainted iff its RHS is. Writing a tainted value
// into a bound-type field is itself a sink.
func (w *taintWalker) walkAssign(x *ast.AssignStmt) {
	for _, rhs := range x.Rhs {
		w.checkExpr(rhs)
	}
	if len(x.Lhs) == len(x.Rhs) {
		for i, lhs := range x.Lhs {
			t := w.exprTainted(x.Rhs[i])
			w.assignTo(lhs, t, x.Rhs[i])
		}
		return
	}
	// Multi-value form (call, comma-ok): call results are clean.
	for _, lhs := range x.Lhs {
		w.assignTo(lhs, false, nil)
	}
}

// assignTo records taint for one assignment target and fires the
// bound-type sink when a tainted value lands in a protected field.
func (w *taintWalker) assignTo(lhs ast.Expr, t bool, rhs ast.Expr) {
	switch target := lhs.(type) {
	case *ast.Ident:
		w.setIdentTaint(target, t)
	case *ast.SelectorExpr:
		if t && w.isBoundType(w.pass.Pkg.Info.TypeOf(target.X)) {
			w.report(lhs.Pos(),
				"request-derived value assigned to %s field %s without validation; route it through Options.Validate/BuildOptions or justify with // taint:",
				typeQualName(w.pass.Pkg.Info.TypeOf(target.X)), target.Sel.Name)
		}
		// Field objects are shared by every value of the type, so taint
		// sticks to the root variable instead: one tainted field taints
		// reads through the whole struct until a sanitizer scrubs it.
		if t {
			if id, ok := rootIdent(target.X); ok {
				w.setIdentTaint(id, true)
			}
		}
	}
}

func (w *taintWalker) setIdentTaint(id *ast.Ident, t bool) {
	if id.Name == "_" {
		return
	}
	if obj := w.pass.Pkg.Info.ObjectOf(id); obj != nil {
		w.tainted[obj] = t
	}
}

// checkExpr recursively inspects an expression for sink calls, bound-type
// composite literals, and nested function literals (walked inline with
// the shared taint set).
func (w *taintWalker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.walkStmt(x.Body)
			return false
		case *ast.CallExpr:
			w.checkCallSinks(x)
		case *ast.CompositeLit:
			if w.isBoundType(w.pass.Pkg.Info.TypeOf(x)) {
				for _, elt := range x.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if w.exprTainted(v) {
						w.report(v.Pos(),
							"request-derived value in %s literal without validation; route it through Options.Validate/BuildOptions or justify with // taint:",
							typeQualName(w.pass.Pkg.Info.TypeOf(x)))
					}
				}
			}
		}
		return true
	})
}

// checkCallSinks fires the call-shaped sinks: tenant-chosen deadlines and
// allocation sizes.
func (w *taintWalker) checkCallSinks(call *ast.CallExpr) {
	if w.isConversion(call) {
		return
	}
	switch fn := calleeFunc(w.pass.Pkg, call); {
	case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "WithTimeout" || fn.Name() == "WithDeadline"):
		if len(call.Args) == 2 && w.exprTainted(call.Args[1]) {
			w.report(call.Pos(),
				"context.%s deadline derived from request input without a clamp; cap it against a server maximum or justify with // taint:",
				fn.Name())
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && isBuiltinIdent(w.pass.Pkg, id) {
		for _, arg := range call.Args[1:] {
			if w.exprTainted(arg) {
				w.report(call.Pos(),
					"make() size derived from request input without a clamp; cap it or justify with // taint:")
			}
		}
	}
}

// scrubSanitizedReceivers handles the statement form `x.Validate()`: a
// sanitizer called for effect cleans its receiver chain.
func (w *taintWalker) scrubSanitizedReceivers(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !stringIn(sel.Sel.Name, w.pass.Cfg.TaintSanitizers) {
		return
	}
	if id, ok := rootIdent(sel.X); ok {
		w.setIdentTaint(id, false)
	}
}

// exprTainted decides whether evaluating e can yield a request-derived
// value under the current taint set.
func (w *taintWalker) exprTainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := w.pass.Pkg.Info.ObjectOf(x)
		return obj != nil && w.tainted[obj]
	case *ast.SelectorExpr:
		if w.isSourceType(w.pass.Pkg.Info.TypeOf(x.X)) {
			return true
		}
		return w.exprTainted(x.X)
	case *ast.ParenExpr:
		return w.exprTainted(x.X)
	case *ast.StarExpr:
		return w.exprTainted(x.X)
	case *ast.UnaryExpr:
		return w.exprTainted(x.X)
	case *ast.BinaryExpr:
		return w.exprTainted(x.X) || w.exprTainted(x.Y)
	case *ast.IndexExpr:
		return w.exprTainted(x.X)
	case *ast.SliceExpr:
		return w.exprTainted(x.X)
	case *ast.TypeAssertExpr:
		return w.exprTainted(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if w.exprTainted(v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return w.callTainted(x)
	}
	return false
}

// callTainted classifies a call in value position: conversions and
// len/cap propagate their operand's taint; sanitizers and min/max clamp;
// every other callee's result is trusted clean (the sweep analyzes the
// callee's own body).
func (w *taintWalker) callTainted(call *ast.CallExpr) bool {
	if w.isConversion(call) && len(call.Args) == 1 {
		return w.exprTainted(call.Args[0])
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "len", "cap":
			if isBuiltinIdent(w.pass.Pkg, fun) && len(call.Args) == 1 {
				return w.exprTainted(call.Args[0])
			}
		case "min", "max":
			if isBuiltinIdent(w.pass.Pkg, fun) {
				return false
			}
		}
		if stringIn(fun.Name, w.pass.Cfg.TaintSanitizers) {
			return false
		}
	case *ast.SelectorExpr:
		if stringIn(fun.Sel.Name, w.pass.Cfg.TaintSanitizers) {
			return false
		}
	}
	return false
}

// isConversion reports whether call is a type conversion T(x).
func (w *taintWalker) isConversion(call *ast.CallExpr) bool {
	tv, ok := w.pass.Pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// isSourceType reports whether t (possibly behind pointers) is one of the
// configured taint-source structs.
func (w *taintWalker) isSourceType(t types.Type) bool {
	return stringIn(typeQualName(t), w.pass.Cfg.TaintSources)
}

// isBoundType reports whether t is one of the configured protected types.
func (w *taintWalker) isBoundType(t types.Type) bool {
	return stringIn(typeQualName(t), w.pass.Cfg.TaintBoundTypes)
}

// typeQualName renders a (possibly pointered) named type as
// "import/path.Name"; "" for everything else.
func typeQualName(t types.Type) string {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// calleeFunc resolves a call's target to a *types.Func when the callee is
// a named function or method; nil for builtins, conversions, and values.
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBuiltinIdent reports whether id resolves to a language builtin (and
// is not shadowed by a user declaration).
func isBuiltinIdent(pkg *Package, id *ast.Ident) bool {
	obj := pkg.Info.ObjectOf(id)
	if obj == nil {
		return true // untracked bare identifier in call position: builtin
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// rootIdent walks a selector/star/paren chain to its base identifier.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
