package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// findNode returns the call-graph node with the given qualified name.
func findNode(t *testing.T, prog *Program, name string) *FuncNode {
	t.Helper()
	for _, n := range prog.Nodes {
		if n.Name == name {
			return n
		}
	}
	for _, n := range prog.Nodes {
		t.Logf("  node %s", n.Name)
	}
	t.Fatalf("no node named %q", name)
	return nil
}

// edgeKinds collects the resolved targets of a node, keyed by edge kind.
func edgeTargets(n *FuncNode, kind EdgeKind) []string {
	var out []string
	for _, e := range n.Edges {
		if e.Kind != kind {
			continue
		}
		switch {
		case e.Callee != nil:
			out = append(out, e.Callee.Name)
		case e.Ext != nil:
			out = append(out, e.Ext.FullName())
		default:
			out = append(out, "<unresolved>")
		}
	}
	return out
}

func TestCallGraphEdgeKinds(t *testing.T) {
	pkgs := loadFixture(t, "callgraph")
	prog := BuildProgram(pkgs)

	total := findNode(t, prog, "cgfix/cg.Total")

	// CHA: the interface call resolves to both implementors, value and
	// pointer receiver.
	iface := edgeTargets(total, EdgeInterface)
	if len(iface) != 2 {
		t.Fatalf("interface edges = %v, want 2 (Square.Area and (*Rect).Area)", iface)
	}
	wantIface := map[string]bool{"cgfix/cg.Square.Area": true, "cgfix/cg.(*Rect).Area": true}
	for _, name := range iface {
		if !wantIface[name] {
			t.Errorf("unexpected CHA target %q", name)
		}
	}

	// op is assigned exactly once from a named function: funcvalue edge.
	if fv := edgeTargets(total, EdgeFuncValue); len(fv) != 1 || fv[0] != "cgfix/cg.add" {
		t.Errorf("funcvalue edges = %v, want [cgfix/cg.add]", fv)
	}

	// loose has its address taken, so the call through it is dynamic.
	if dyn := edgeTargets(total, EdgeDynamic); len(dyn) != 1 {
		t.Errorf("dynamic edges = %v, want exactly 1 (call through loose)", dyn)
	}

	// Make creates one literal, linked by a closure edge; the literal is a
	// node of its own whose Root is Make.
	mk := findNode(t, prog, "cgfix/cg.Make")
	cl := edgeTargets(mk, EdgeClosure)
	if len(cl) != 1 {
		t.Fatalf("closure edges = %v, want 1", cl)
	}
	lit := findNode(t, prog, cl[0])
	if lit.Lit == nil || lit.Encl != mk || lit.Root() != mk {
		t.Errorf("literal node %s not attributed to Make", lit.Name)
	}
}

func TestCallGraphAnnotations(t *testing.T) {
	pkgs := loadFixture(t, "allocbudget_good")
	prog := BuildProgram(pkgs)

	step := findNode(t, prog, "abgood/kernel.(*state).Step")
	if !step.Hot {
		t.Errorf("Step not marked hot")
	}
	setup := findNode(t, prog, "abgood/kernel.Setup")
	if setup.Hot {
		t.Errorf("Setup wrongly marked hot")
	}

	// Reachability: accumulate is in Step's cone, Setup is not.
	reach := prog.HotReachable()
	acc := findNode(t, prog, "abgood/kernel.(*state).accumulate")
	if reach[acc] != step {
		t.Errorf("accumulate's hot witness = %v, want Step", reach[acc])
	}
	if _, ok := reach[setup]; ok {
		t.Errorf("cold Setup reported hot-reachable")
	}
}

func allocCfg() *Config { return &Config{} }

func TestAllocBudgetGood(t *testing.T) {
	got := runOne(t, "allocbudget_good", allocCfg(), AllocBudget(allocCfg()))
	wantFindings(t, got, 0)
}

func TestAllocBudgetBad(t *testing.T) {
	got := runOne(t, "allocbudget_bad", allocCfg(), AllocBudget(allocCfg()))
	wantFindings(t, got, 16,
		"make",
		"map literal",
		"map assignment",
		"escapes to the heap",
		"interface call",
		"boxes",
		"string concatenation",
		"append",
		"go statement",
		"unresolved function value",
		"conversion",
		"fmt.Sprintf",
		"captures base",
	)
	// Every finding names its witness hot entry.
	for _, f := range got {
		if f.Analyzer != "alloc-budget" {
			t.Errorf("finding from %q, want alloc-budget", f.Analyzer)
		}
	}
}

// TestTerminalEdges pins the error-terminal rule: call sites inside panic
// arguments and non-nil-error returns are marked Terminal and do not extend
// hot reachability (an err.Error() in a panic message must not drag every
// error type's formatting code into the allocation budget), while memo
// reachability deliberately still follows them.
func TestTerminalEdges(t *testing.T) {
	pkgs := loadFixture(t, "allocbudget_good")
	prog := BuildProgram(pkgs)

	validate := findNode(t, prog, "abgood/kernel.Validate")
	errFn := findNode(t, prog, "abgood/kernel.(*parseError).Error")

	terminal := 0
	for _, e := range validate.Edges {
		if e.Terminal {
			terminal++
		}
	}
	if terminal == 0 {
		t.Fatalf("Validate has no terminal edges; panic((&parseError{...}).Error()) should produce one")
	}

	hot := prog.HotReachable()
	if _, ok := hot[validate]; !ok {
		t.Errorf("Validate is not hot-reachable despite its annotation")
	}
	if _, ok := hot[errFn]; ok {
		t.Errorf("(*parseError).Error is hot-reachable; terminal edges must not extend the hot cone")
	}

	// The non-hot traversal used by memo-safe still crosses terminal edges.
	all := prog.ReachableFrom([]*FuncNode{validate})
	if _, ok := all[errFn]; !ok {
		t.Errorf("(*parseError).Error not reachable via ReachableFrom; memo analysis must follow failure paths")
	}
}

func TestMemoSafeGood(t *testing.T) {
	got := runOne(t, "memosafe_good", allocCfg(), MemoSafe(allocCfg()))
	wantFindings(t, got, 0)
}

func TestMemoSafeBad(t *testing.T) {
	got := runOne(t, "memosafe_bad", allocCfg(), MemoSafe(allocCfg()))
	wantFindings(t, got, 5,
		"Touch",   // global map write
		"Bump",    // parameter mutation
		"Stamp",   // time.Now
		"Keys",    // map iteration order
		"Indirect", // mutation via helper summary
	)
}

func TestMemoReport(t *testing.T) {
	pkgs := loadFixture(t, "memosafe_bad")
	report := BuildMemoReport(pkgs, "")
	if report.Tool != "sialint" {
		t.Errorf("tool = %q", report.Tool)
	}
	if len(report.Entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(report.Entries))
	}
	for _, e := range report.Entries {
		if e.Certified {
			t.Errorf("%s certified despite violations", e.Function)
		}
		if len(e.Violations) == 0 {
			t.Errorf("%s has no violations in report", e.Function)
		}
		if e.Reachable < 1 {
			t.Errorf("%s reachable = %d", e.Function, e.Reachable)
		}
	}

	good := loadFixture(t, "memosafe_good")
	greport := BuildMemoReport(good, "")
	if len(greport.Entries) != 3 {
		t.Fatalf("good fixture: got %d entries, want 3", len(greport.Entries))
	}
	justs := 0
	for _, e := range greport.Entries {
		if !e.Certified {
			t.Errorf("%s not certified: %+v", e.Function, e.Violations)
		}
		justs += len(e.Justifications)
	}
	if justs != 1 {
		t.Errorf("good fixture justification count = %d, want 1 (Normalize's counter)", justs)
	}

	// The writer emits valid JSON.
	var buf bytes.Buffer
	if err := WriteMemoReport(&buf, pkgs, ""); err != nil {
		t.Fatal(err)
	}
	var round MemoReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
}

// TestSARIFUTF16Columns pins the column convention of SARIF output: per
// SARIF 2.1.0 §3.30.2 startColumn counts UTF-16 code units, so findings
// after multi-byte runes must shift left of their byte columns.
func TestSARIFUTF16Columns(t *testing.T) {
	cfg := allocCfg()
	pkgs := loadFixture(t, "sarif_unicode")
	findings := Run(pkgs, []*Analyzer{AllocBudget(cfg)}, cfg)
	if len(findings) != 2 {
		for _, f := range findings {
			t.Logf("  %s: %s", f.Pos, f.Message)
		}
		t.Fatalf("got %d findings, want 2", len(findings))
	}

	base, err := filepath.Abs(filepath.Join("testdata", "sarif_unicode"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, findings, []*Analyzer{AllocBudget(cfg)}, base); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Runs []struct {
			Results []struct {
				Locations []struct {
					PhysicalLocation struct {
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	regions := log.Runs[0].Results
	if len(regions) != 2 {
		t.Fatalf("got %d results", len(regions))
	}
	// Line 10: `\tπ := make(...)`. make sits at byte column 8 (tab=1, π=2
	// bytes), but π is a single UTF-16 unit, so the SARIF column is 7.
	r0 := regions[0].Locations[0].PhysicalLocation.Region
	if r0.StartLine != 10 || r0.StartColumn != 7 {
		t.Errorf("finding 0 at %d:%d, want 10:7 (UTF-16 units)", r0.StartLine, r0.StartColumn)
	}
	// Line 11: `\t𝛽 := append(...)`. 𝛽 is 4 UTF-8 bytes (byte column 10)
	// but a surrogate pair, i.e. 2 UTF-16 units: SARIF column 8.
	r1 := regions[1].Locations[0].PhysicalLocation.Region
	if r1.StartLine != 11 || r1.StartColumn != 8 {
		t.Errorf("finding 1 at %d:%d, want 11:8 (UTF-16 units)", r1.StartLine, r1.StartColumn)
	}

	// Byte-identical golden: regenerate with UPDATE_GOLDEN=1 go test.
	golden := filepath.Join("testdata", "sarif_unicode.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("SARIF output diverged from golden\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestParallelOutputByteIdentical is the determinism regression for the
// interprocedural analyzers: the rendered JSON from RunParallel must be
// byte-identical run-to-run and to the serial driver, at any worker count.
// The bad fixture spans two packages whose findings interleave, so any
// ordering instability in the merge shows up here.
func TestParallelOutputByteIdentical(t *testing.T) {
	cfg := allocCfg()
	pkgs := loadFixture(t, "allocbudget_bad")
	analyzers := []*Analyzer{AllocBudget(cfg), MemoSafe(cfg)}

	render := func(fs []Finding) []byte {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, fs, ""); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	serial := render(Run(pkgs, analyzers, cfg))
	for _, workers := range []int{0, 1, 2, 8} {
		first := render(RunParallel(pkgs, analyzers, cfg, workers))
		second := render(RunParallel(pkgs, analyzers, cfg, workers))
		if !bytes.Equal(first, second) {
			t.Errorf("workers=%d: two parallel runs differ\nfirst:\n%s\nsecond:\n%s", workers, first, second)
		}
		if !bytes.Equal(first, serial) {
			t.Errorf("workers=%d: parallel differs from serial\nparallel:\n%s\nserial:\n%s", workers, first, serial)
		}
	}
}
