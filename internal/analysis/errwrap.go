package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ErrWrap enforces the module's error-chain discipline, which is what makes
// the public sentinels (sia.ErrTimeout, sia.ErrBudget, …) matchable with
// errors.Is end to end:
//
//   - an error value must never be compared to a sentinel with == or != —
//     wrapping (which the rest of the pipeline does deliberately) makes the
//     comparison silently false; errors.Is is the only correct match.
//     Comparisons against nil or against an error-typed local are exempt;
//     a `// errwrap:` comment on or above the line silences a deliberate
//     identity check.
//   - fmt.Errorf with an error-typed argument must use the %w verb: %v or
//     %s formats the message but drops the chain, so upstream errors.Is
//     matches stop working.
//   - exported functions of the boundary packages must not return a freshly
//     constructed, unwrapped error (errors.New or a chain-less fmt.Errorf
//     built in the return statement): no sentinel can ever match it, which
//     breaks the "every public error matches a sia.Err*" contract.
func ErrWrap(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "err-wrap",
		Doc:  "sentinel comparisons use errors.Is, wrapping keeps the chain with %w, public errors wrap sentinels",
		Run: func(pass *Pass) {
			boundary := stringIn(pass.Pkg.Path, cfg.ErrWrapBoundaryPackages)
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					switch x := n.(type) {
					case *ast.BinaryExpr:
						pass.checkSentinelCompare(x)
					case *ast.CallExpr:
						pass.checkErrorfWrap(x)
					case *ast.FuncDecl:
						if boundary && x.Name.IsExported() && exportedReceiver(x) {
							pass.checkBoundaryReturns(x)
						}
					}
					return true
				})
			}
		},
	}
}

// exportedReceiver reports whether fn is reachable from outside the
// package: a plain function, or a method on an exported receiver type.
func exportedReceiver(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return true
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// checkSentinelCompare flags ==/!= between an error value and a sentinel (a
// package-level error variable).
func (pass *Pass) checkSentinelCompare(be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	info := pass.Pkg.Info
	if !isErrorType(info.TypeOf(be.X)) || !isErrorType(info.TypeOf(be.Y)) {
		return
	}
	sentinel := pass.sentinelName(be.X)
	if sentinel == "" {
		sentinel = pass.sentinelName(be.Y)
	}
	if sentinel == "" {
		return
	}
	if pass.Pkg.commentedWith(be.Pos(), "errwrap:") {
		return
	}
	pass.Reportf(be.Pos(),
		"error compared to sentinel %s with %s; wrapped errors never match — use errors.Is",
		sentinel, be.Op)
}

// sentinelName returns the name of the package-level error variable e
// refers to, or "" when e is not a sentinel reference (nil, locals, fields,
// and call results all return "").
func (pass *Pass) sentinelName(e ast.Expr) string {
	var id *ast.Ident
	switch x := e.(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	obj, ok := pass.Pkg.Info.Uses[id]
	if !ok {
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	// Package-level: its parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Name()
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument without a %w verb anywhere in a constant format string.
func (pass *Pass) checkErrorfWrap(call *ast.CallExpr) {
	if !pass.isPkgFunc(call.Fun, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := pass.constString(call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.Pkg.Info.TypeOf(arg)) {
			if pass.Pkg.commentedWith(call.Pos(), "errwrap:") {
				return
			}
			pass.Reportf(arg.Pos(),
				"fmt.Errorf formats an error without %%w, dropping the chain; use %%w (or justify with // errwrap:)")
			return
		}
	}
}

// checkBoundaryReturns flags return statements in an exported boundary
// function whose error operand is constructed fresh and unwrapped in the
// return itself.
func (pass *Pass) checkBoundaryReturns(fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns are not the boundary's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := res.(*ast.CallExpr)
			if !ok {
				continue
			}
			switch {
			case pass.isPkgFunc(call.Fun, "errors", "New"):
				if !pass.Pkg.commentedWith(call.Pos(), "errwrap:") {
					pass.Reportf(call.Pos(),
						"exported %s returns errors.New(...): no sentinel matches it; wrap a package sentinel with %%w",
						fn.Name.Name)
				}
			case pass.isPkgFunc(call.Fun, "fmt", "Errorf"):
				if format, ok := pass.constString(call.Args[0]); ok && !strings.Contains(format, "%w") {
					if !pass.Pkg.commentedWith(call.Pos(), "errwrap:") {
						pass.Reportf(call.Pos(),
							"exported %s returns a fresh fmt.Errorf without %%w: no sentinel matches it; wrap a package sentinel",
							fn.Name.Name)
					}
				}
			}
		}
		return true
	})
}

// isPkgFunc reports whether fun denotes the function pkg.name (resolved
// through the type checker, so aliased imports are handled).
func (pass *Pass) isPkgFunc(fun ast.Expr, pkg, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := pass.Pkg.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkg
}

// constString evaluates e as a constant string.
func (pass *Pass) constString(e ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}
