// Control-flow graphs over function bodies, built from pure syntax (no type
// information needed). The path-sensitive analyzers — cancel-poll,
// lock-balance — run reachability and dataflow over these graphs instead of
// guessing from lexical structure, which is what lets them accept a
// cancellation poll behind an if on every path and reject one behind an if
// on some paths.
//
// The construction is the textbook one specialized to Go's structured
// control flow plus goto: a Block is a maximal straight-line statement
// sequence; compound statements contribute only their non-control parts
// (an if's condition, a for's condition, a switch's tag) to blocks, with
// their bodies distributed to successor blocks. Back edges are recorded per
// loop statement at construction time, so analyzers get loop heads and
// back-edge sources without computing dominators.
package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Block is one basic block: statements (and control expressions) that
// execute in sequence, with control transferring to one of Succs at the
// end. Kind is a stable human-readable tag ("for.head", "if.then", …) used
// by golden tests and debug output.
type Block struct {
	Index int
	Kind  string
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Loop describes one for/range statement in a CFG: its head block (the
// target of back edges, holding the condition or range expression) and the
// statement itself for position reporting and comment lookup.
type Loop struct {
	Stmt  ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	Head  *Block
	entry *Block // the block that flowed into Head from before the loop
}

// CFG is the control-flow graph of one function body. Entry is the first
// block executed; Exit is the single synthetic block every return, panic,
// and fall-off-the-end edge targets.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	Loops  []*Loop
}

// BackEdgeSources returns the blocks with an edge to l.Head that closes the
// loop (the post-statement block, body fall-through, and continue sites).
func (g *CFG) BackEdgeSources(l *Loop) []*Block {
	var back []*Block
	for _, p := range l.Head.Preds {
		if p != l.entry {
			back = append(back, p)
		}
	}
	return back
}

// LoopMembers returns the natural-loop block set of l: Head plus every
// block that reaches a back edge without passing through Head.
func (g *CFG) LoopMembers(l *Loop) map[*Block]bool {
	members := map[*Block]bool{l.Head: true}
	var stack []*Block
	for _, b := range g.BackEdgeSources(l) {
		if !members[b] {
			members[b] = true
			stack = append(stack, b)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range b.Preds {
			if !members[p] {
				members[p] = true
				stack = append(stack, p)
			}
		}
	}
	return members
}

// String renders the graph as one "bN(kind) -> bM bK" line per block, in
// index order — the golden-test format.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d(%s) ->", b.Index, b.Kind)
		succs := append([]*Block(nil), b.Succs...)
		sort.Slice(succs, func(i, j int) bool { return succs[i].Index < succs[j].Index })
		for _, s := range succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// NewCFG builds the control-flow graph of a function body. Function
// literals nested in the body are treated as opaque values: their
// statements belong to their own CFGs, not the enclosing one.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = &Block{Kind: "exit"} // indexed last, below
	b.cur = b.g.Entry
	b.stmt(body)
	b.edge(b.cur, b.g.Exit)
	b.g.Exit.Index = len(b.g.Blocks)
	b.g.Blocks = append(b.g.Blocks, b.g.Exit)
	return b.g
}

// ctrlFrame is one enclosing breakable/continuable statement during
// construction.
type ctrlFrame struct {
	label string
	brk   *Block // break target; nil only for labeled non-loop statements
	cont  *Block // continue target; nil for switch/select
}

type cfgBuilder struct {
	g        *CFG
	cur      *Block
	frames   []ctrlFrame
	labels   map[string]*Block // label name -> target block (created on first use)
	nextCase *Block            // fallthrough target while building a case clause
	// pendingLabel carries a label down to the loop/switch/select statement
	// it names, so break L / continue L resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a non-control node (statement or expression) to the current
// block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the pending label for the statement that owns it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns (creating if needed) the block a label names.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

// frameFor finds the innermost frame a break/continue resolves to.
func (b *cfgBuilder) frameFor(label string, needCont bool) *ctrlFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if label != "" && f.label != label {
			continue
		}
		if needCont && f.cont == nil {
			continue
		}
		if !needCont && f.brk == nil {
			continue
		}
		return f
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		for _, st := range x.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(x.Init)
		b.add(x.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		b.edge(cond, then)
		b.cur = then
		b.stmt(x.Body)
		thenEnd := b.cur
		var elseEnd *Block
		if x.Else != nil {
			els := b.newBlock("if.else")
			b.edge(cond, els)
			b.cur = els
			b.stmt(x.Else)
			elseEnd = b.cur
		}
		done := b.newBlock("if.done")
		b.edge(thenEnd, done)
		if x.Else != nil {
			b.edge(elseEnd, done)
		} else {
			b.edge(cond, done)
		}
		b.cur = done
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(x.Init)
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		loop := &Loop{Stmt: x, Head: head, entry: b.cur}
		b.g.Loops = append(b.g.Loops, loop)
		if x.Cond != nil {
			head.Nodes = append(head.Nodes, x.Cond)
		}
		body := b.newBlock("for.body")
		var post *Block
		if x.Post != nil {
			post = b.newBlock("for.post")
		}
		done := b.newBlock("for.done")
		b.edge(head, body)
		if x.Cond != nil {
			b.edge(head, done)
		}
		cont := head
		if post != nil {
			cont = post
		}
		b.frames = append(b.frames, ctrlFrame{label: label, brk: done, cont: cont})
		b.cur = body
		b.stmt(x.Body)
		b.edge(b.cur, cont)
		b.frames = b.frames[:len(b.frames)-1]
		if post != nil {
			b.cur = post
			b.stmt(x.Post)
			b.edge(b.cur, head)
		}
		b.cur = done
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		loop := &Loop{Stmt: x, Head: head, entry: b.cur}
		b.g.Loops = append(b.g.Loops, loop)
		head.Nodes = append(head.Nodes, x.X)
		if x.Key != nil {
			head.Nodes = append(head.Nodes, x.Key)
		}
		if x.Value != nil {
			head.Nodes = append(head.Nodes, x.Value)
		}
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.edge(head, body)
		b.edge(head, done)
		b.frames = append(b.frames, ctrlFrame{label: label, brk: done, cont: head})
		b.cur = body
		b.stmt(x.Body)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(x.Init)
		if x.Tag != nil {
			b.add(x.Tag)
		}
		b.switchClauses(label, x.Body, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body, cc.List == nil
		}, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(x.Init)
		b.add(x.Assign)
		b.switchClauses(label, x.Body, func(cc *ast.CaseClause) ([]ast.Node, []ast.Stmt, bool) {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes, cc.Body, cc.List == nil
		}, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		done := b.newBlock("select.done")
		b.frames = append(b.frames, ctrlFrame{label: label, brk: done})
		hasDefault := false
		anyComm := false
		for _, cs := range x.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.edge(head, blk)
			if cc.Comm == nil {
				hasDefault = true
			} else {
				anyComm = true
				// The select head evaluates every clause's channel operand
				// on entry (spec: all operands evaluated once, in order);
				// record the comm in both the head — where the evaluation
				// and readiness polling happen — and the clause block,
				// where its receive/send effect lands.
				head.Nodes = append(head.Nodes, cc.Comm)
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.cur = blk
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.edge(b.cur, done)
		}
		_ = hasDefault
		if !anyComm && !hasDefault {
			// select {} blocks forever: done is unreachable.
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = done
	case *ast.LabeledStmt:
		lb := b.labelBlock(x.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		switch x.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = x.Label.Name
		}
		b.stmt(x.Stmt)
	case *ast.BranchStmt:
		label := ""
		if x.Label != nil {
			label = x.Label.Name
		}
		switch x.Tok.String() {
		case "break":
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
		case "continue":
			if f := b.frameFor(label, true); f != nil {
				b.edge(b.cur, f.cont)
			}
		case "goto":
			b.edge(b.cur, b.labelBlock(label))
		case "fallthrough":
			b.edge(b.cur, b.nextCase)
		}
		b.cur = b.newBlock("unreach")
	case *ast.ReturnStmt:
		b.add(x)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock("unreach")
	case *ast.ExprStmt:
		b.add(x)
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.cur, b.g.Exit)
				b.cur = b.newBlock("unreach")
			}
		}
	default:
		// Straight-line statements: declarations, assignments, sends,
		// increments, defers, go statements, empty statements.
		b.add(x)
	}
}

// switchClauses builds the shared case-clause structure of switch and type
// switch statements. pick extracts the guard expressions, body, and
// default-ness of a clause; fallthroughOK enables fallthrough edges.
func (b *cfgBuilder) switchClauses(label string, body *ast.BlockStmt, pick func(*ast.CaseClause) ([]ast.Node, []ast.Stmt, bool), fallthroughOK bool) {
	head := b.cur
	done := b.newBlock("switch.done")
	b.frames = append(b.frames, ctrlFrame{label: label, brk: done})
	hasDefault := false
	blocks := make([]*Block, 0, len(body.List))
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		kind := "case"
		guards, _, isDefault := pick(cc)
		if isDefault {
			kind = "default"
			hasDefault = true
		}
		blk := b.newBlock("switch." + kind)
		b.edge(head, blk)
		blk.Nodes = append(blk.Nodes, guards...)
		blocks = append(blocks, blk)
		clauses = append(clauses, cc)
	}
	for i, cc := range clauses {
		_, stmts, _ := pick(cc)
		b.cur = blocks[i]
		savedNext := b.nextCase
		if fallthroughOK && i+1 < len(blocks) {
			b.nextCase = blocks[i+1]
		} else {
			b.nextCase = nil
		}
		for _, st := range stmts {
			b.stmt(st)
		}
		b.nextCase = savedNext
		b.edge(b.cur, done)
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = done
}
