package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLoadSkipsIgnoredFiles is the regression test for the loader's file
// filter: a package directory containing a `//go:build ignore` generator
// (package main, undefined symbols), an underscore-prefixed draft (does not
// parse), and a wrong-platform file (redeclares an exported symbol) must
// load cleanly with only the real file included.
func TestLoadSkipsIgnoredFiles(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "loadskip"), []string{"./..."})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Path != "lskip/pkg" {
		t.Errorf("path = %q, want %q", pkg.Path, "lskip/pkg")
	}
	if len(pkg.Files) != 1 {
		for _, f := range pkg.Files {
			t.Logf("  loaded: %s", pkg.Fset.Position(f.Package).Filename)
		}
		t.Fatalf("got %d files, want 1 (ok.go only)", len(pkg.Files))
	}
	if obj := pkg.Types.Scope().Lookup("Answer"); obj == nil {
		t.Errorf("Answer not in scope")
	}
}

// TestConstraintSatisfied pins the header scanner's corner cases.
func TestConstraintSatisfied(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"plain.go", "package p\n", true},
		{"ignored.go", "//go:build ignore\n\npackage main\n", false},
		{"plusbuild.go", "// +build ignore\n\npackage main\n", false},
		{"negated.go", "//go:build !ignore\n\npackage p\n", true},
		{"afterdoc.go", "// Package p does things.\npackage p\n\n//go:build ignore\n", true},
		{"blockcomment.go", "/*\nlicense text\n*/\n//go:build ignore\npackage main\n", false},
	}
	for _, tc := range cases {
		if got := constraintSatisfied(write(tc.name, tc.src)); got != tc.want {
			t.Errorf("%s: constraintSatisfied = %v, want %v", tc.name, got, tc.want)
		}
	}
}
