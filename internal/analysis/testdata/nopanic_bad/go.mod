module npbad

go 1.22
