// Package lib is the known-bad corpus for the no-panic analyzer: a
// panic(err) hiding a real failure path and a dispatch panic with the
// wrong prefix.
package lib

import (
	"errors"
	"fmt"
)

// Parse panics on a reachable input-dependent path: must be flagged.
func Parse(s string) string {
	if s == "" {
		panic(errors.New("empty input"))
	}
	return s
}

// Name has an unreachable default, but the message prefix does not name
// the package: must be flagged.
func Name(k int) string {
	switch k {
	case 0:
		return "zero"
	default:
		panic(fmt.Sprintf("dispatch: unknown kind %d", k))
	}
}
