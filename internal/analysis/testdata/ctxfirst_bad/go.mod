module cfbad

go 1.22
