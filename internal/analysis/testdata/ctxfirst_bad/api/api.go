// Package api violates the context-first convention.
package api

import "context"

// Fetch buries its context after the key.
func Fetch(key string, ctx context.Context) (string, error) {
	_ = ctx
	return key, nil
}

// Client is an exported receiver type.
type Client struct{}

// Do puts the context last.
func (c *Client) Do(n int, ctx context.Context) error {
	_ = ctx
	return nil
}

// Ok is fine and must not be reported.
func Ok(ctx context.Context, n int) int {
	_ = ctx
	return n
}
