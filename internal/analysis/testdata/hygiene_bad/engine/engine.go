// Package engine is the known-bad corpus for the hygiene analyzer: copied
// sync types and a defer queued inside a loop.
package engine

import (
	"os"
	"sync"
)

type state struct {
	mu sync.Mutex
	n  int
}

// Locked takes the lock-bearing struct by value: the copy has its own
// mutex. Must be flagged (parameter).
func Locked(s state) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// SumAll copies each element — and its mutex — into the range variable.
// Must be flagged (range value).
func SumAll(states []state) int {
	total := 0
	for _, s := range states {
		total += s.n
	}
	return total
}

// ReadAll queues one deferred Close per iteration; none run until the
// function returns. Must be flagged (defer in loop).
func ReadAll(paths []string) error {
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	return nil
}

// Clone dereferences into a fresh copy of the lock. Must be flagged
// (assignment copy); the by-value return is flagged too (result).
func Clone(a *state) state {
	b := *a
	return b
}
