module hybad

go 1.22
