// Package api is the known-bad corpus for the err-wrap analyzer.
package api

import (
	"errors"
	"fmt"
)

// ErrBudget is the package sentinel.
var ErrBudget = errors.New("api: budget exceeded")

func work(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: n = %d", ErrBudget, n)
	}
	return nil
}

// CompareEq matches the sentinel with ==: wrapped errors never match.
// Must be flagged.
func CompareEq(err error) bool {
	return err == ErrBudget
}

// CompareNeq matches with !=. Must be flagged.
func CompareNeq(err error) bool {
	return err != ErrBudget
}

// DropsChain formats the error with %v, severing the chain. Must be
// flagged (once: the wrap happens off the return statement, so only the
// %w rule fires, not the boundary rule).
func DropsChain(n int) error {
	if err := work(n); err != nil {
		wrapped := fmt.Errorf("drops: %v", err)
		return wrapped
	}
	return nil
}

// FreshNew returns errors.New at the exported boundary: nothing can ever
// match it. Must be flagged.
func FreshNew() error {
	return errors.New("api: something went wrong")
}

// FreshErrorf returns a chain-less fmt.Errorf at the boundary. Must be
// flagged.
func FreshErrorf(n int) error {
	return fmt.Errorf("api: bad value %d", n)
}
