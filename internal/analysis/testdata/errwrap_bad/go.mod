module ewbad

go 1.22
