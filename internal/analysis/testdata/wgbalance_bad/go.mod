module wgbad

go 1.22
