// Package pool is the known-bad corpus for the wg-balance analyzer.
package pool

import "sync"

// AddInsideGoroutine increments the counter from the goroutine itself:
// Wait can observe the group at zero before the goroutine runs. Must be
// flagged.
func AddInsideGoroutine(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1)
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// DoneWithoutAdd launches a goroutine that calls Done with no Add
// anywhere before the launch: the counter goes negative and panics.
// Must be flagged.
func DoneWithoutAdd() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
