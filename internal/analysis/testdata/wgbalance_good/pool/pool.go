// Package pool is the known-good corpus for the wg-balance analyzer:
// every goroutine launch that calls Done has a matching Add before the
// launch, and Add is never issued from inside the goroutine it guards.
package pool

import "sync"

// FanOut is the canonical shape: Add(1) before each launch, defer Done
// inside it.
func FanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// BatchAdd reserves the whole batch up front, then launches.
func BatchAdd(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// NoWaitGroup launches plain goroutines; nothing to pair.
func NoWaitGroup(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// Justified carries a marker explaining an Add that the analyzer cannot
// see (the Add happens in the caller).
func Justified(wg *sync.WaitGroup) {
	// wg: caller reserved this slot via Add before handing us the group.
	go func() {
		defer wg.Done()
	}()
}
