module wggood

go 1.22
