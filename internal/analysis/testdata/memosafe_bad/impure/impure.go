// Package impure is the memo-safe bad fixture: one violation per effect
// class the analyzer promises to catch.
package impure

import "time"

var cache = map[string]int{}

type node struct {
	val  int
	next *node
}

// Touch writes a package-level map: not memoization-pure.
// sia:memoize
func Touch(key string) int {
	cache[key]++ // global write
	return cache[key]
}

// Bump mutates its argument — the memo key would change under the cache.
// sia:memoize
func Bump(n *node) int {
	n.val++ // parameter mutation
	return n.val
}

// Stamp reads the clock.
// sia:memoize
func Stamp(x int) int64 {
	return int64(x) + time.Now().UnixNano() // nondeterminism
}

// Keys leaks map iteration order into a slice.
// sia:memoize
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // order-dependent accumulation
	}
	return out
}

// Indirect launders the mutation through a helper: the summary propagates
// scrub's receiver mutation to the entry's call site.
// sia:memoize
func Indirect(n *node) int {
	scrub(n)
	return n.val
}

func scrub(n *node) {
	n.val = 0
}
