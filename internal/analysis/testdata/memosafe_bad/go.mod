module msbad

go 1.22
