// Package use consumes tri.TriBool correctly: collapses are justified and
// Unknown is handled explicitly.
package use

import "tbgood/tri"

// Accept collapses to bool deliberately and says so.
func Accept(v tri.TriBool) bool {
	// tribool: WHERE semantics — Unknown rejects the row like False.
	return v == tri.True
}

// Describe handles all three truth values explicitly; switches are not
// collapses.
func Describe(v tri.TriBool) string {
	switch v {
	case tri.True:
		return "true"
	case tri.False:
		return "false"
	default:
		return "unknown"
	}
}

// IsUnknown compares against Unknown, which is explicit three-valued
// handling, never a collapse.
func IsUnknown(v tri.TriBool) bool { return v == tri.Unknown }
