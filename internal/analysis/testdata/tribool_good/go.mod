module tbgood

go 1.22
