// Package tri is the fixture three-valued logic type: the analyzer's
// TriBoolPkg, where conversions are legitimate.
package tri

// TriBool is a Kleene truth value.
type TriBool int8

const (
	// False is definite falsehood.
	False TriBool = iota - 1
	// Unknown is the NULL truth value.
	Unknown
	// True is definite truth.
	True
)

// FromInt decodes a stored truth value; conversions are allowed here, in
// the home package.
func FromInt(i int8) TriBool { return TriBool(i) }

// Encode stores a truth value; likewise allowed here.
func Encode(v TriBool) int8 { return int8(v) }
