// Package pure is the memo-safe good fixture: entries that clone before
// mutating, keep effects on locally owned values, and justify the one
// benign counter they touch.
package pure

import "sort"

type vec struct {
	xs []int
}

func (v *vec) clone() *vec {
	return &vec{xs: append([]int(nil), v.xs...)}
}

// scale mutates its receiver in place. That alone is not a violation: the
// summary records it, and call sites decide based on ownership.
func (v *vec) scale(k int) {
	for i := range v.xs {
		v.xs[i] *= k
	}
}

var evaluations int

// Normalize is memoization-pure: it mutates only a clone, and the package
// counter it bumps is justified.
// sia:memoize
func Normalize(v *vec, k int) []int {
	// memo: diagnostic counter; results do not depend on it
	evaluations++
	w := v.clone()
	w.scale(k)
	sort.Ints(w.xs)
	return w.xs
}

// Sum is pure over a map argument: iteration order cannot reach the output
// of a commutative reduction.
// sia:memoize
func Sum(m map[string]int) int {
	total := 0
	for _, x := range m {
		total += x
	}
	return total
}

type config struct {
	limit int
	tag   string
}

// normalized fills defaults into a copy. The writes land in the value
// receiver — the caller's struct is untouched — so this must not count as
// parameter mutation.
func (c config) normalized() config {
	if c.limit == 0 {
		c.limit = 8
	}
	if c.tag == "" {
		c.tag = "default"
	}
	return c
}

// Canonical is pure even though normalized writes fields of its receiver:
// the receiver is a value, so the writes stay in Canonical's copy.
// sia:memoize
func Canonical(c config) string {
	n := c.normalized()
	if n.limit > 100 {
		n.limit = 100
	}
	return n.tag
}
