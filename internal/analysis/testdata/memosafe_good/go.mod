module msgood

go 1.22
