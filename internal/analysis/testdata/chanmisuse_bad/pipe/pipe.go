// Package pipe holds the channel misuses chan-misuse must flag:
// send-after-close, double-close, closing a channel the function does
// not own, a select loop spinning on a closed channel, and a send on a
// nil channel.
package pipe

// SendAfterClose sends on a channel already closed on this path: panics.
func SendAfterClose() {
	ch := make(chan int)
	close(ch)
	ch <- 1
}

// DoubleClose closes the same channel twice: panics.
func DoubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch)
}

// CloseParam closes a channel it did not make.
func CloseParam(done chan struct{}) {
	close(done)
}

// SpinClosed keeps selecting on a channel closed before the loop: the
// case fires instantly with zero values on every iteration.
func SpinClosed(work chan int) int {
	quit := make(chan struct{})
	close(quit)
	n := 0
	for {
		select {
		case <-quit:
			n++
		case v := <-work:
			n += v
		}
	}
}

// NilSend sends on the zero-value channel: blocks forever.
func NilSend() {
	var ch chan int
	ch <- 2
}
