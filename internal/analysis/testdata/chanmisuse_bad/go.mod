module cmbad

go 1.22
