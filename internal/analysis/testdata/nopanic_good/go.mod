module npgood

go 1.22
