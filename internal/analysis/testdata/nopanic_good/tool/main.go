// Command tool sits outside the library prefix: its panics are not
// sialint's business.
package main

import "npgood/internal/lib"

func main() {
	s, err := lib.Parse("x")
	if err != nil {
		panic(err)
	}
	_ = s
	_ = lib.Name(lib.KindZero)
}
