// Package lib is library code whose only panics are unreachable-dispatch
// panics carrying the package prefix.
package lib

import (
	"errors"
	"fmt"
)

// Kind selects a dispatch arm.
type Kind int

const (
	// KindZero is the only valid kind.
	KindZero Kind = iota
)

// Name dispatches over Kind; the default arm is unreachable and says so
// with a prefixed message.
func Name(k Kind) string {
	switch k {
	case KindZero:
		return "zero"
	default:
		panic(fmt.Sprintf("lib: unknown kind %d", int(k)))
	}
}

// Parse returns its failure as an error, never a panic.
func Parse(s string) (string, error) {
	if s == "" {
		return "", errors.New("lib: empty input")
	}
	return s, nil
}

// Join panics with a concatenated, still prefixed, message.
func Join(ok bool) string {
	if !ok {
		panic("lib: invariant violated: " + "unexpected state")
	}
	return "ok"
}
