// Package pkg is the loader-skip regression fixture: the directory also
// holds a //go:build ignore generator, an underscore-prefixed draft, and a
// wrong-platform file, none of which may reach the type checker.
package pkg

// Answer is the only symbol the loader should see in this directory.
func Answer() int { return 42 }
