//go:build someotheros && !someotheros2

package pkg

// Answer is redeclared here: if the loader ever includes a file whose build
// constraint the platform does not satisfy, type-checking fails on the
// duplicate.
func Answer() int { return 0 }
