//go:build ignore

// This is a generator program of the kind committed next to the package it
// generates. It is package main and references symbols that do not exist,
// so loading it alongside pkg would fail type-checking twice over.
package main

func main() {
	emitAllTheCode() // undefined on purpose
}
