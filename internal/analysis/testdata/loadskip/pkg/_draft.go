package pkg

// Underscore-prefixed files are invisible to the go tool; this one would
// not even parse.
func Broken() int { return undefinedSymbol +
