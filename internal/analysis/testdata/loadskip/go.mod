module lskip

go 1.22
