// Package cg exercises every call-graph edge kind in one small module: CHA
// over an interface with value and pointer implementors, a tracked function
// value, a closure creation, and an untracked (dynamic) call.
package cg

type Shape interface{ Area() int }

type Square struct{ s int }

func (q Square) Area() int { return q.s * q.s }

type Rect struct{ w, h int }

func (r *Rect) Area() int { return r.w * r.h }

// op is assigned exactly one named function, so calls through it resolve.
var op = add

func add(a, b int) int { return a + b }

// loose escapes the tracker: its address is taken.
var loose = add
var looseAddr = &loose

// Total calls through the interface (CHA), the tracked variable, and the
// untracked one.
func Total(shapes []Shape) int {
	t := 0
	for _, s := range shapes {
		t += s.Area()
	}
	t = op(t, 1)
	return loose(t, 2)
}

// Make creates a closure; the literal is a node linked by a closure edge.
func Make(base int) func() int {
	f := func() int { return base }
	return f
}
