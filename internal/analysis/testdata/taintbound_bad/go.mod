module tabad

go 1.22
