// Package core holds the protected Options type.
package core

type Options struct {
	MaxIterations int
	Timeout       int64
}

func (o *Options) Validate() error { return nil }
