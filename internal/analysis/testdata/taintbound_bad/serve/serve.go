// Package serve holds the unclamped request-derived flows taint-bound
// must flag: a tenant-chosen deadline, allocation size, loop bound, and
// solver options written straight off the wire.
package serve

import (
	"context"
	"time"

	"tabad/api"
	"tabad/core"
)

// Timeout arms the request deadline with no clamp: flagged.
func Timeout(ctx context.Context, req *api.Request) {
	d := time.Duration(req.TimeoutMS) * time.Millisecond
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	_ = ctx
}

// Alloc sizes a buffer straight from the request: flagged.
func Alloc(req *api.Request) []byte {
	return make([]byte, req.N)
}

// LoopBound iterates a request-chosen count: flagged.
func LoopBound(req *api.Request) int {
	n := 0
	for i := int64(0); i < req.N; i++ {
		n++
	}
	return n
}

// RawOptions writes a request field into the protected Options type with
// no validation: flagged.
func RawOptions(req *api.Request) core.Options {
	var o core.Options
	o.MaxIterations = int(req.N)
	return o
}

// LiteralOptions builds Options straight from the wire: flagged.
func LiteralOptions(req *api.Request) core.Options {
	return core.Options{Timeout: req.TimeoutMS}
}
