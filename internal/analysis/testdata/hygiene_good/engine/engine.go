// Package engine is the known-good corpus for the hygiene analyzer: locks
// travel by pointer and defers sit outside loops (or inside function
// literals, where they belong).
package engine

import (
	"os"
	"sync"
)

// Counter guards a count with a mutex.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add locks through a pointer receiver.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}

// SumAll iterates over pointers, never copying the lock.
func SumAll(cs []*Counter) int {
	total := 0
	for _, c := range cs {
		total += c.n
	}
	return total
}

// SumByIndex iterates a value slice by index, which also never copies.
func SumByIndex(cs []Counter) int {
	total := 0
	for i := range cs {
		total += cs[i].n
	}
	return total
}

// ReadAll closes each file before the next iteration by wrapping the body
// in a function literal; the defer inside it is fine.
func ReadAll(paths []string) error {
	for _, p := range paths {
		err := func() error {
			f, ferr := os.Open(p)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}
