module hygood

go 1.22
