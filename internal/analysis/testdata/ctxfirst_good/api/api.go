// Package api follows the context-first convention everywhere.
package api

import "context"

// Fetch takes its context first.
func Fetch(ctx context.Context, key string) (string, error) {
	_ = ctx
	return key, nil
}

// Plain takes no context at all.
func Plain(key string) string { return key }

// Client is an exported receiver type.
type Client struct{}

// Do is an exported method with the context first.
func (c *Client) Do(ctx context.Context, n int, extra ...string) error {
	_ = ctx
	return nil
}

// unexportedLate is allowed to order parameters freely: internal helpers
// sometimes thread a context alongside accumulated state.
func unexportedLate(n int, ctx context.Context) int {
	_ = ctx
	return n
}
