module cfgood

go 1.22
