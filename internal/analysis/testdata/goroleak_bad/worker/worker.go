// Package worker holds the goroutine leaks goroutine-leak must flag: a
// direct spin loop, a leak one call away through the call graph, and a
// joined goroutine whose spin also hangs the launcher at Wait.
package worker

import "sync"

type Server struct {
	active bool
	n      int
}

// Spin launches a goroutine whose loop never polls anything.
func Spin() {
	x := 0
	go func() {
		for {
			x++
		}
	}()
}

// loop never polls a termination signal; Indirect reaches it through the
// call graph.
func (s *Server) loop() {
	for s.active {
		s.n++
	}
}

func (s *Server) Indirect() {
	go s.loop()
}

// Joined spins inside a wg-joined goroutine: the launcher hangs with it.
func Joined(items []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for total < 100 {
			total += len(items)
		}
	}()
	wg.Wait()
	return total
}
