module glbad

go 1.22
