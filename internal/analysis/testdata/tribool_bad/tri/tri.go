// Package tri is the fixture three-valued logic type for the known-bad
// corpus.
package tri

// TriBool is a Kleene truth value.
type TriBool int8

const (
	// False is definite falsehood.
	False TriBool = iota - 1
	// Unknown is the NULL truth value.
	Unknown
	// True is definite truth.
	True
)
