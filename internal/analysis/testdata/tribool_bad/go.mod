module tbbad

go 1.22
