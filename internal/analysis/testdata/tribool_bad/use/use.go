// Package use misuses tri.TriBool in all the ways the analyzer must catch.
package use

import "tbbad/tri"

// Accept silently conflates Unknown with False: no justification comment.
func Accept(v tri.TriBool) bool {
	return v == tri.True
}

// Reject silently conflates Unknown with True.
func Reject(v tri.TriBool) bool {
	return v != tri.False
}

// FromInt converts an integer into a truth value outside the home package.
func FromInt(i int) tri.TriBool {
	return tri.TriBool(i)
}

// Encode converts a truth value to an integer outside the home package.
func Encode(v tri.TriBool) int8 {
	return int8(v)
}
