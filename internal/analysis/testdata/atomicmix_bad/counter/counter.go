// Package counter mixes sync/atomic with plain accesses on the same
// field and on a package-level var — the race class -race only catches
// when schedules cooperate.
package counter

import "sync/atomic"

type Stats struct {
	hits  int64
	total int64
}

func (s *Stats) Inc() {
	atomic.AddInt64(&s.hits, 1)
}

// Snapshot reads hits without the atomic API: flagged.
func (s *Stats) Snapshot() int64 {
	return s.hits
}

// Reset writes hits without the atomic API: flagged.
func (s *Stats) Reset() {
	s.hits = 0
}

// Bump uses total consistently without atomics: not mixed, not flagged.
func (s *Stats) Bump() {
	s.total++
}

// Ops is accessed atomically here and plainly from the view package.
var Ops int64

func BumpOps() {
	atomic.AddInt64(&Ops, 1)
}
