// Package view reads counter.Ops plainly from another package: the mix
// is only visible to a whole-program analysis.
package view

import "ambad/counter"

// Peek reads the atomically-updated counter without the atomic API: flagged.
func Peek() int64 {
	return counter.Ops
}
