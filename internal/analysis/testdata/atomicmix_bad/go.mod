module ambad

go 1.22
