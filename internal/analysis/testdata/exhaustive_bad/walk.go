package exbad

// Count misses *Leaf and has no default clause: the analyzer must flag it.
func Count(n Node) int {
	switch x := n.(type) {
	case *Add:
		return Count(x.L) + Count(x.R)
	case *Neg:
		return Count(x.X)
	}
	return 1
}
