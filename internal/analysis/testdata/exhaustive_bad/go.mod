module exbad

go 1.22
