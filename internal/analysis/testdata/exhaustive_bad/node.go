// Package exbad is a known-bad corpus for the exhaustive-switch analyzer:
// walk.go dispatches over Node without covering Leaf and without a
// default, the exact shape that crashes at runtime when a new AST node is
// added.
package exbad

// Node is the AST interface the analyzer is pointed at.
type Node interface{ node() }

// Add is a binary node.
type Add struct{ L, R Node }

func (*Add) node() {}

// Neg is a unary node.
type Neg struct{ X Node }

func (*Neg) node() {}

// Leaf is a terminal node — the one Count forgets.
type Leaf struct{ V int }

func (*Leaf) node() {}
