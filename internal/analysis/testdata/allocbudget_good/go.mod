module abgood

go 1.22
