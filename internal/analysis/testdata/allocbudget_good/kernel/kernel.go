// Package kernel is the alloc-budget good fixture: a hot entry whose whole
// reachable cone either avoids the heap or justifies every allocation.
package kernel

import "strconv"

type state struct {
	buf  []byte
	vals []int64
	sum  int64
}

// sia:hotpath
func (s *state) Step(v int64) {
	s.sum += v
	s.buf = s.buf[:0]
	s.buf = append(s.buf, 'v', '=') // in-place append is the amortized idiom
	s.buf = strconv.AppendInt(s.buf, v, 10)
	s.accumulate(v)
}

// accumulate is reachable from Step and stays allocation-free.
func (s *state) accumulate(v int64) {
	if len(s.vals) > 0 && s.vals[0] == v {
		return
	}
	s.vals = append(s.vals, v)
}

// Setup is cold: it may allocate freely because no hot entry reaches it.
func Setup(n int) *state {
	return &state{
		buf:  make([]byte, 0, 64),
		vals: make([]int64, 0, n),
	}
}

// grow is reachable from Step but justifies its allocation.
// sia:hotpath
func (s *state) Record(v int64) {
	if v < 0 {
		// alloc: cold slow path taken at most once per run
		s.vals = append([]int64(nil), s.vals...)
		return
	}
	s.sum += v
}

type parseError struct {
	input string
}

// Error allocates freely. It must stay outside the hot cone: it is only
// reached through error-terminal edges (panic arguments and non-nil error
// returns), which do not extend hot reachability.
func (e *parseError) Error() string {
	return "kernel: bad input " + strconv.Quote(e.input)
}

// Validate is hot, but its failure paths build and format errors; the
// terminal-edge rule keeps that formatting out of the allocation budget.
// sia:hotpath
func Validate(s *state, v int64) error {
	if v > 1<<40 {
		return &parseError{input: "overflow"}
	}
	if s == nil {
		panic((&parseError{input: "nil state"}).Error())
	}
	s.sum += v
	return nil
}
