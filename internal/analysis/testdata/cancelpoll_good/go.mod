module cpgood

go 1.22
