// Package solver is the known-good corpus for the cancel-poll analyzer:
// every while-style loop either polls cancellation on all paths through
// its body or carries a // cancel: justification.
package solver

import "context"

// S mimics the SMT solver's stop plumbing.
type S struct{ stopped bool }

func (s *S) checkStop() error {
	if s.stopped {
		return context.Canceled
	}
	return nil
}

func step(n int) int { return n / 2 }

// Converge polls with checkStop at the top of every cycle.
func Converge(s *S, n int) (int, error) {
	for n > 1 {
		if err := s.checkStop(); err != nil {
			return 0, err
		}
		n = step(n)
	}
	return n, nil
}

// PollsOnEveryBranch polls on both sides of the branch, so every cycle
// passes a poll even though no single poll dominates the body.
func PollsOnEveryBranch(s *S, n int) error {
	for {
		if n%2 == 0 {
			if err := s.checkStop(); err != nil {
				return err
			}
			n = step(n)
		} else {
			if err := s.checkStop(); err != nil {
				return err
			}
			n = 3*n + 1
		}
		if n <= 1 {
			return nil
		}
	}
}

// CtxAware polls through the context directly.
func CtxAware(ctx context.Context, n int) error {
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n--
	}
	return nil
}

// CallsCtxTakingFunc polls indirectly: every cycle calls a function that
// receives the context, which is cancellation-aware by convention.
func CallsCtxTakingFunc(ctx context.Context, n int) error {
	for n > 0 {
		m, err := query(ctx, n)
		if err != nil {
			return err
		}
		n = m
	}
	return nil
}

func query(ctx context.Context, n int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return n - 1, nil
}

// BudgetBounded decrements a budget every cycle; exhausting the budget is
// the cancellation mechanism.
func BudgetBounded(n int) int {
	budget := 1 << 10
	for n > 1 {
		budget--
		if budget <= 0 {
			break
		}
		n = step(n)
	}
	return n
}

// Euclid is justified: the trip count is mathematically bounded.
func Euclid(a, b int) int {
	// cancel: Euclid's algorithm on machine integers converges in O(log) steps.
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Counted loops and range loops are never candidates.
func Counted(xs []int) int {
	total := 0
	for i := 0; i < len(xs); i++ {
		total += xs[i]
	}
	for _, x := range xs {
		total += x
	}
	return total
}

// SelectDone polls through the ctx.Done comm clause: the select head
// re-evaluates readiness every cycle.
func SelectDone(ctx context.Context, ch chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case v := <-ch:
			total += v
		}
	}
}

// Tracer mimics internal/obs: Emit records a span and is NOT a poll.
type Tracer struct{ n int }

func (t *Tracer) Emit(event string) { t.n++ }

// InstrumentedConverge both polls and emits a trace span every cycle: the
// instrumentation rides along without disturbing the cancellation contract.
func InstrumentedConverge(s *S, t *Tracer, n int) (int, error) {
	for n > 1 {
		if err := s.checkStop(); err != nil {
			return 0, err
		}
		t.Emit("iteration")
		n = step(n)
	}
	return n, nil
}
