// Package helper gives the bad fixture a second package so parallel runs
// must merge findings across packages deterministically.
package helper

var notes []string

var current func()

// Note is reachable from the hot entry in kernel and allocates.
func Note(s string) {
	notes = append(notes, s) // in-place append: not flagged
	sink = &record{tag: s}   // escaping composite literal: flagged
}

type record struct{ tag string }

var sink any

// Pick returns an untracked function value: current is assigned from an
// exported setter, so calls through it are dynamic.
func Pick() func() { return current }

// SetCurrent installs a callback; taking it from outside keeps the
// function-value tracker honest.
func SetCurrent(f func()) { current = f }

// sia:hotpath
func Closure(base int) func() int {
	return func() int { // capturing literal allocates
		base++
		return base
	}
}
