// Package kernel is the alloc-budget bad fixture: a hot entry reaching
// allocations of every flagged class, none justified.
package kernel

import (
	"fmt"

	"abbad/helper"
)

type item struct {
	Name string
	N    int
}

type sink interface{ Consume(v any) }

// sia:hotpath
func Process(s sink, names []string, n int) string {
	xs := make([]int, n)       // make on the hot path
	m := map[string]int{}      // map literal
	for i := range xs {
		m[names[i%len(names)]] = i // map assignment growth
	}
	it := &item{Name: "x", N: n}  // &composite literal
	s.Consume(n)                  // interface boxing of an int
	label := "id-" + names[0]     // string concatenation
	out := append([]string(nil), names...) // append into a different variable
	go helper.Note(label)         // go statement
	cb := helper.Pick()
	cb()                            // dynamic: untracked function value
	bs := []byte(label)             // string -> []byte conversion
	return fmt.Sprintf("%v %v %v", it, out, bs) // fmt.Sprintf + boxing
}
