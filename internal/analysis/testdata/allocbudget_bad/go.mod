module abbad

go 1.22
