// Package counter uses sync/atomic consistently: every access to an
// atomically-managed field goes through the atomic API, non-atomic fields
// are untouched by it, and the one pre-publication plain write carries a
// justification.
package counter

import "sync/atomic"

type Stats struct {
	hits int64
	name string
}

func (s *Stats) Inc() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *Stats) Get() int64 {
	return atomic.LoadInt64(&s.hits)
}

// Label reads a field that has no atomic accesses: not mixed.
func (s *Stats) Label() string {
	return s.name
}

// NewStats writes hits before the struct is shared.
func NewStats(seed int64) *Stats {
	s := &Stats{name: "stats"}
	// atomic: single-threaded init — the struct is not yet published.
	s.hits = seed
	return s
}
