module amgood

go 1.22
