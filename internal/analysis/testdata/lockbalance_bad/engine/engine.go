// Package engine is the known-bad corpus for the lock-balance analyzer:
// double-locks and paths that return with the mutex still held.
package engine

import "sync"

// Counter is a mutex-guarded value.
type Counter struct {
	mu sync.Mutex
	n  int
}

// DoubleLock locks a held mutex: self-deadlock. Must be flagged (the
// second Lock), and the fall-off-the-end return still holds the lock —
// flagged too.
func (c *Counter) DoubleLock() {
	c.mu.Lock()
	c.mu.Lock()
}

// LeakOnEarlyReturn forgets the unlock on the early-return branch. Must be
// flagged at the return inside the if.
func (c *Counter) LeakOnEarlyReturn(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		return limit
	}
	n := c.n
	c.mu.Unlock()
	return n
}
