module lbbad

go 1.22
