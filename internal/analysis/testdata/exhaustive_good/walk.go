package exgood

// Count covers every Node implementation explicitly.
func Count(n Node) int {
	switch x := n.(type) {
	case *Add:
		return Count(x.L) + Count(x.R)
	case *Neg:
		return Count(x.X)
	case *Leaf:
		return 1
	}
	return 0
}

// Depth opts out of exhaustiveness with an explicit default.
func Depth(n Node) int {
	switch x := n.(type) {
	case *Add:
		l, r := Depth(x.L), Depth(x.R)
		if l > r {
			return l + 1
		}
		return r + 1
	default:
		return 1
	}
}
