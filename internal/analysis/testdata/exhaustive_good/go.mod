module exgood

go 1.22
