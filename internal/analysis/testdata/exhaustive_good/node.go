// Package exgood is a known-good corpus for the exhaustive-switch
// analyzer: every type switch over Node either covers all three
// implementations or declares an explicit default.
package exgood

// Node is the AST interface the analyzer is pointed at.
type Node interface{ node() }

// Add is a binary node.
type Add struct{ L, R Node }

func (*Add) node() {}

// Neg is a unary node.
type Neg struct{ X Node }

func (*Neg) node() {}

// Leaf is a terminal node.
type Leaf struct{ V int }

func (*Leaf) node() {}
