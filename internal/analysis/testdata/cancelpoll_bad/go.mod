module cpbad

go 1.22
