// Package solver is the known-bad corpus for the cancel-poll analyzer:
// while-style loops with at least one poll-free cycle.
package solver

import "context"

// S mimics the SMT solver's stop plumbing.
type S struct{ stopped bool }

func (s *S) checkStop() error {
	if s.stopped {
		return context.Canceled
	}
	return nil
}

func step(n int) int { return n / 2 }

// NeverPolls has no poll anywhere. Must be flagged.
func NeverPolls(n int) int {
	for n > 1 {
		n = step(n)
	}
	return n
}

// PollsOnOnePathOnly polls only when n is even: the odd cycle is poll-free,
// which is exactly the path-sensitive case a lexical scan would miss. Must
// be flagged.
func PollsOnOnePathOnly(s *S, n int) error {
	for {
		if n%2 == 0 {
			if err := s.checkStop(); err != nil {
				return err
			}
		}
		n = step(n) + 1
		if n == 1 {
			return nil
		}
	}
}

// PollInClosureDoesNotCount queues the poll in a closure that this loop
// never runs. Must be flagged.
func PollInClosureDoesNotCount(s *S, n int) func() error {
	var poll func() error
	for n > 1 {
		poll = func() error { return s.checkStop() }
		n = step(n)
	}
	return poll
}

// Tracer mimics internal/obs: Emit records a span and is NOT a poll.
type Tracer struct{ n int }

func (t *Tracer) Emit(event string) { t.n++ }

// TracesButNeverPolls emits a span every cycle but never polls: observing
// a loop is not the same as being able to stop it. Must be flagged.
func TracesButNeverPolls(t *Tracer, n int) int {
	for n > 1 {
		t.Emit("iteration")
		n = step(n)
	}
	return n
}
