module uni

go 1.22
