// Package pkg is the SARIF column fixture: the flagged allocations sit
// after multi-byte runes, so their byte columns and UTF-16 columns differ.
// π is two UTF-8 bytes but one UTF-16 unit; 𝛽 (U+1D6FD) is four UTF-8
// bytes and a two-unit surrogate pair.
package pkg

// Grüße allocates on lines whose prefixes contain non-ASCII identifiers.
// sia:hotpath
func Grüße(n int) []int {
	π := make([]int, n)
	𝛽 := append(π, n)
	return 𝛽
}
