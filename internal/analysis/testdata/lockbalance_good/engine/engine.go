// Package engine is the known-good corpus for the lock-balance analyzer:
// every Lock is paired with an Unlock (explicit or deferred) on every path
// to return, including across branches, loops, and early returns.
package engine

import "sync"

// Counter is a mutex-guarded value.
type Counter struct {
	mu sync.Mutex
	n  int
}

// DeferStyle is the canonical pairing.
func (c *Counter) DeferStyle() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// BranchBalanced unlocks explicitly on both the early-return path and the
// fall-through path.
func (c *Counter) BranchBalanced(limit int) int {
	c.mu.Lock()
	if c.n > limit {
		c.mu.Unlock()
		return limit
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// LoopReacquire locks and releases once per iteration — the singleflight
// retry-loop shape the result cache uses.
func (c *Counter) LoopReacquire(rounds int) int {
	total := 0
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		if c.n == 0 {
			c.mu.Unlock()
			continue
		}
		total += c.n
		c.mu.Unlock()
	}
	return total
}

// HelperAssumesHeld documents a caller-holds-the-lock contract: it takes no
// lock itself, so its state stays definitely-unlocked and nothing fires.
// Caller holds c.mu.
func (c *Counter) HelperAssumesHeld() int {
	return c.n
}

// RW pairs the read lock independently from the write lock.
type RW struct {
	mu sync.RWMutex
	n  int
}

// Read uses the read side, deferred.
func (r *RW) Read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}

// Write uses the write side, explicit.
func (r *RW) Write(n int) {
	r.mu.Lock()
	r.n = n
	r.mu.Unlock()
}
