module lbgood

go 1.22
