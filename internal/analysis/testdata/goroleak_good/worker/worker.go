// Package worker exercises the goroutine shapes goroutine-leak accepts:
// select-polled loops, ctx-polled loops reached through the call graph,
// counted loops, channel ranges, joined goroutines over bounded work, and
// a justified escape.
package worker

import (
	"context"
	"sync"
)

type Server struct {
	done chan struct{}
	in   chan int
	out  []int
}

// Pump's loop polls the done channel via select on every cycle.
func (s *Server) Pump() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			case v := <-s.in:
				s.out = append(s.out, v)
			}
		}
	}()
}

// run polls ctx on every cycle; Start reaches it through the call graph.
func (s *Server) run(ctx context.Context) {
	for {
		if ctx.Err() != nil {
			return
		}
		s.step()
	}
}

func (s *Server) step() {}

func (s *Server) Start(ctx context.Context) {
	go s.run(ctx)
}

// Drain ranges over a channel: the loop ends when the channel closes.
func (s *Server) Drain() {
	go func() {
		for v := range s.in {
			s.out = append(s.out, v)
		}
	}()
}

// Bounded runs a counted three-clause loop.
func Bounded(n int) {
	go func() {
		sum := 0
		for i := 0; i < n; i++ {
			sum += i
		}
		_ = sum
	}()
}

// Busy carries a justification the analyzer honors at the launch site.
func Busy() {
	done := false
	// goroutine: test double — the loop flips done on its first pass.
	go func() {
		for !done {
			done = true
		}
	}()
}

// Joined launches a goroutine over bounded work and waits for it.
func Joined(items []int) int {
	var (
		wg  sync.WaitGroup
		sum int
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, v := range items {
			sum += v
		}
	}()
	wg.Wait()
	return sum
}
