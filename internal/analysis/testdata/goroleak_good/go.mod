module glgood

go 1.22
