// Package api holds the wire-request struct the taint-bound fixture
// treats as untrusted input.
package api

type Request struct {
	TimeoutMS int64
	N         int64
	Items     []string
}
