module tagood

go 1.22
