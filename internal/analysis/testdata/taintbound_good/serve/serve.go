// Package serve exercises the clean flows taint-bound accepts: the clamp
// idiom before a deadline, the sanctioned Options constructor, a local
// clamp before a protected field write, the min builtin as a cap, a
// sanitizer scrubbing its receiver, and a justified escape.
package serve

import (
	"context"
	"time"

	"tagood/api"
	"tagood/core"
)

const maxTimeout = 5 * time.Second

// Clamped caps the request deadline against the server maximum before
// arming it — the module's clamp idiom: the overwrite cleans the value.
func Clamped(ctx context.Context, req *api.Request) {
	d := time.Duration(req.TimeoutMS) * time.Millisecond
	if d <= 0 || d > maxTimeout {
		d = maxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	_ = ctx
}

// Built routes request fields through the sanctioned constructor.
func Built(req *api.Request) (core.Options, error) {
	return core.BuildOptions(req.N)
}

// Bounded clamps locally before the value lands in a protected field.
func Bounded(req *api.Request) core.Options {
	n := int(req.N)
	if n > 1000 {
		n = 1000
	}
	var o core.Options
	o.MaxIterations = n
	return o
}

// MinClamp bounds an allocation with the min builtin.
func MinClamp(req *api.Request) []byte {
	return make([]byte, min(req.N, 4096))
}

type plan struct {
	budget int64
}

func (p *plan) Validate() error { return nil }

// Scrubbed taints a local struct, then the validator scrubs it before
// the allocation.
func Scrubbed(req *api.Request) []byte {
	var p plan
	p.budget = req.N
	p.Validate()
	return make([]byte, p.budget)
}

// Escaped documents a bound the analyzer cannot see.
func Escaped(req *api.Request) []int64 {
	// taint: the wire decoder rejects payloads with more than 1024 items
	// before this function can run.
	return make([]int64, len(req.Items))
}
