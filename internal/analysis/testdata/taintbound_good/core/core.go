// Package core holds the protected Options type and its sanctioned
// constructors.
package core

type Options struct {
	MaxIterations int
	Timeout       int64
}

func (o *Options) Validate() error { return nil }

// BuildOptions is the sanctioned path from wire values to Options: it
// clamps internally, so its result is trusted.
func BuildOptions(n int64) (Options, error) {
	if n > 1000 {
		n = 1000
	}
	return Options{MaxIterations: int(n)}, nil
}
