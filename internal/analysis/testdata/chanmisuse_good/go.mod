module cmgood

go 1.22
