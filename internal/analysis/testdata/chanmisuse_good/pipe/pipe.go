// Package pipe exercises the channel lifecycles chan-misuse accepts:
// owner close after the last send, comma-ok draining, select loops with
// the ok-form on closable channels, deliberate nil cases inside select,
// and a justified ownership transfer.
package pipe

// Owner makes the channel, sends, and closes it exactly once.
func Owner(vals []int) <-chan int {
	ch := make(chan int, len(vals))
	for _, v := range vals {
		ch <- v
	}
	close(ch)
	return ch
}

// Drain empties a possibly-closed channel with the comma-ok form.
func Drain(ch chan int) int {
	total := 0
	for {
		v, ok := <-ch
		if !ok {
			return total
		}
		total += v
	}
}

// Worker's select uses the ok-form on the channel that can close.
func Worker(quit chan struct{}, in chan int) int {
	n := 0
	for {
		select {
		case _, ok := <-quit:
			if !ok {
				return n
			}
		case v := <-in:
			n += v
		}
	}
}

// Disable keeps a nil channel in a select to park that case — the
// standard idiom; a nil comm in a select never fires and never reports.
func Disable(in chan int) int {
	n := 0
	var timer chan int
	for i := 0; i < 3; i++ {
		select {
		case v := <-in:
			n += v
		case v := <-timer:
			n += v
		}
	}
	return n
}

// HandOff documents an ownership transfer before closing a parameter.
func HandOff(done chan struct{}) {
	// chan: ownership transferred — the caller hands done to exactly one
	// worker, which signals completion by closing it.
	close(done)
}
