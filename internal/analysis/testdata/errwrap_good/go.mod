module ewgood

go 1.22
