// Package api is the known-good corpus for the err-wrap analyzer: sentinel
// matching goes through errors.Is, wrapping keeps the chain with %w, and
// the exported boundary only returns sentinel-wrapped errors.
package api

import (
	"errors"
	"fmt"
)

// ErrBudget is the package sentinel every public error wraps.
var ErrBudget = errors.New("api: budget exceeded")

func work(n int) error {
	if n < 0 {
		return fmt.Errorf("%w: n = %d", ErrBudget, n)
	}
	return nil
}

// Run wraps the sentinel with %w at the boundary.
func Run(n int) error {
	if err := work(n); err != nil {
		return fmt.Errorf("run: %w", err)
	}
	return nil
}

// IsBudget matches with errors.Is, never ==.
func IsBudget(err error) bool {
	return errors.Is(err, ErrBudget)
}

// NilChecks compares against nil freely.
func NilChecks(err error) bool {
	return err == nil || err != nil
}

// Passthrough returns an error variable unchanged; only fresh
// constructions are boundary findings.
func Passthrough(err error) error {
	return err
}

// Identity holds a justified identity comparison.
func Identity(err error) bool {
	// errwrap: exact identity wanted — this deduplicates one known value.
	return err == ErrBudget
}
