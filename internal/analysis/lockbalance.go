package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockBalance checks mutex discipline in the configured packages with a
// forward dataflow over the control-flow graph: a Lock() must be released —
// by an Unlock() or a registered defer Unlock() — on every path to every
// return, and a mutex that is definitely held must not be locked again.
// Both are deadlocks in production (`sync.Mutex` is not reentrant), and
// both hide behind rarely taken branches, which is exactly what the
// path-sensitive propagation catches and a lexical scan cannot.
//
// The analysis is deliberately conservative about merges: when one
// predecessor holds the lock and another does not, the state is "maybe"
// and nothing is reported — helpers called with the lock held (documented
// "caller holds mu" functions) therefore stay silent, since taking no lock
// leaves the state unlocked, not maybe.
func LockBalance(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "lock-balance",
		Doc:  "every Lock is released on every path to return; no double-lock of a held mutex",
		Run: func(pass *Pass) {
			if !stringIn(pass.Pkg.Path, cfg.LockPackages) {
				return
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						pass.checkLockBalance(body)
					}
					return true
				})
			}
		},
	}
}

// lockState is the per-mutex abstract state.
type lockState int8

const (
	lockUnlocked lockState = iota // definitely not held
	lockHeld                      // definitely held
	lockMaybe                     // held on some paths only
)

// lockFact maps a mutex (by rendered path and operation pair, e.g. "c.mu"
// or "c.mu.R" for the read side of an RWMutex) to its state and whether a
// deferred unlock is registered. nil is the dataflow bottom (unreachable).
type lockFact struct {
	state    map[string]lockState
	deferred map[string]bool
}

func (f *lockFact) clone() *lockFact {
	c := &lockFact{state: map[string]lockState{}, deferred: map[string]bool{}}
	for k, v := range f.state {
		c.state[k] = v
	}
	for k := range f.deferred {
		c.deferred[k] = true
	}
	return c
}

type lockLattice struct{}

func (lockLattice) Bottom() *lockFact { return nil }

func (lockLattice) Join(a, b *lockFact) *lockFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	j := a.clone()
	// A key absent from a fact's state map is lockUnlocked (the zero
	// value), so both direction sweeps treat absence as unlocked.
	for k, bv := range b.state {
		if j.state[k] != bv {
			j.state[k] = lockMaybe
		}
	}
	for k, av := range a.state {
		if _, ok := b.state[k]; !ok && av != lockUnlocked {
			j.state[k] = lockMaybe
		}
	}
	// A deferred unlock on either path suppresses held-at-return reports:
	// union keeps the analysis quiet rather than wrong.
	for k := range b.deferred {
		j.deferred[k] = true
	}
	return j
}

func (lockLattice) Equal(a, b *lockFact) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.state) != len(b.state) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k, v := range a.state {
		if b.state[k] != v {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// lockOp is one mutex operation found in a block.
type lockOp struct {
	key      string // mutex path, with ".R" suffix for the read side
	acquire  bool
	deferred bool
	node     ast.Node
}

// checkLockBalance solves the lock dataflow over one function body and
// reports on the fixed point.
func (pass *Pass) checkLockBalance(body *ast.BlockStmt) {
	g := NewCFG(body)
	any := false
	ops := map[*Block][]lockOp{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			pass.lockOpsIn(n, func(op lockOp) {
				ops[b] = append(ops[b], op)
				any = true
			})
		}
	}
	if !any {
		return
	}
	lat := lockLattice{}
	entry := &lockFact{state: map[string]lockState{}, deferred: map[string]bool{}}
	transfer := func(b *Block, in *lockFact) *lockFact {
		if in == nil {
			return nil
		}
		out := in.clone()
		for _, op := range ops[b] {
			applyLockOp(out, op, nil)
		}
		return out
	}
	in, _ := ForwardSolve(g, lat, entry, transfer)

	// Report pass: replay each reachable block once against its fixed-point
	// in-fact. Walking the block's nodes in order keeps reports tied to the
	// operation that creates the bad state.
	for _, b := range g.Blocks {
		fact := in[b]
		if fact == nil {
			continue
		}
		cur := fact.clone()
		for _, n := range b.Nodes {
			// Returns are checked against the state at that point.
			if ret, ok := n.(*ast.ReturnStmt); ok {
				pass.reportHeldAt(ret.Pos(), cur)
			}
			pass.lockOpsIn(n, func(op lockOp) {
				applyLockOp(cur, op, func(key string) {
					pass.Reportf(op.node.Pos(), "%s locked again while already held (sync mutexes are not reentrant)", key)
				})
			})
		}
		// Implicit fall-off-the-end return: the block flows to exit without
		// a return statement. Panics are exempt — an unwinding goroutine's
		// lock state is the recover handler's problem, not a leak this
		// analyzer can judge.
		if !endsWithReturnOrPanic(b) {
			for _, s := range b.Succs {
				if s == g.Exit {
					pass.reportHeldAt(blockEndPos(b, body), cur)
				}
			}
		}
	}
}

// applyLockOp mutates fact by one operation; onDouble (when non-nil) fires
// for a Lock of a definitely held mutex.
func applyLockOp(fact *lockFact, op lockOp, onDouble func(key string)) {
	switch {
	case op.acquire:
		if fact.state[op.key] == lockHeld && onDouble != nil {
			onDouble(op.key)
		}
		fact.state[op.key] = lockHeld
	case op.deferred:
		fact.deferred[op.key] = true
	default:
		fact.state[op.key] = lockUnlocked
	}
}

// reportHeldAt reports each mutex definitely held with no deferred release.
func (pass *Pass) reportHeldAt(pos token.Pos, fact *lockFact) {
	keys := make([]string, 0, len(fact.state))
	for k, st := range fact.state {
		if st == lockHeld && !fact.deferred[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		pass.Reportf(pos, "return with %s still held and no deferred unlock on this path", k)
	}
}

// lockOpsIn scans one block node for mutex operations, without descending
// into function literals (their locks belong to their own activation).
func (pass *Pass) lockOpsIn(n ast.Node, emit func(lockOp)) {
	ast.Inspect(n, func(child ast.Node) bool {
		switch x := child.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if op, ok := pass.asLockOp(x.Call); ok && !op.acquire {
				op.deferred = true
				emit(op)
			}
			return false
		case *ast.CallExpr:
			if op, ok := pass.asLockOp(x); ok {
				emit(op)
			}
		}
		return true
	})
}

// asLockOp decodes a call as a mutex operation when its receiver is a
// sync.Mutex or sync.RWMutex reachable through an identifier/selector path.
func (pass *Pass) asLockOp(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "Unlock":
	case "RLock":
		acquire, read = true, true
	case "RUnlock":
		read = true
	default:
		return lockOp{}, false
	}
	t := pass.Pkg.Info.TypeOf(sel.X)
	if t == nil || !isSyncLocker(t) {
		return lockOp{}, false
	}
	key := exprName(sel.X)
	if key == "" {
		return lockOp{}, false
	}
	if read {
		key += ".R"
	}
	return lockOp{key: key, acquire: acquire, node: call}, true
}

// isSyncLocker reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncLocker(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// endsWithReturnOrPanic reports whether b's last node is a return statement
// or a panic call.
func endsWithReturnOrPanic(b *Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	switch last := b.Nodes[len(b.Nodes)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// blockEndPos picks a position for an implicit return: the last node of the
// block, or the body's closing brace for empty blocks.
func blockEndPos(b *Block, body *ast.BlockStmt) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[len(b.Nodes)-1].Pos()
	}
	return body.Rbrace
}
