package analysis

import (
	"go/ast"
	"strings"
)

// CancelPoll enforces the cancellation contract on the solver and engine
// hot paths: every while-style loop — a for statement with no post clause,
// whose trip count is therefore data-dependent (convergence loops, CEGIS
// rounds, claim loops) — must poll cancellation on every cycle through its
// body, or carry a `// cancel:` comment justifying why it is bounded.
//
// "Polls cancellation" means the cycle passes a statement that does one of:
//
//   - call a configured poll function (checkStop by default);
//   - call a method on a context.Context (ctx.Err(), ctx.Done(), …);
//   - call any function passing a context.Context argument — such a callee
//     is cancellation-aware by the module's own ctx-first convention;
//   - decrement or reassign a budget-named variable.
//
// The check is path-sensitive over the control-flow graph: a poll behind an
// `if` that some iteration can skip does not satisfy it. Counted three-
// clause loops and range loops are exempt — their trip counts are bounded
// by the collection or counter they iterate.
func CancelPoll(cfg *Config) *Analyzer {
	return &Analyzer{
		Name: "cancel-poll",
		Doc:  "while-style loops in solver/engine packages must poll cancellation every cycle",
		Run: func(pass *Pass) {
			if !stringIn(pass.Pkg.Path, cfg.CancelPackages) {
				return
			}
			for _, file := range pass.Pkg.Files {
				ast.Inspect(file, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						pass.checkCancelLoops(body)
					}
					return true
				})
			}
		},
	}
}

// checkCancelLoops builds the CFG of one function body and checks each of
// its candidate loops. Nested function literals are handled by their own
// CFGs (the ast.Inspect in Run visits them separately), and their
// statements do not leak into this body's blocks.
func (pass *Pass) checkCancelLoops(body *ast.BlockStmt) {
	g := NewCFG(body)
	for _, loop := range g.Loops {
		forStmt, ok := loop.Stmt.(*ast.ForStmt)
		if !ok || forStmt.Post != nil {
			continue // range or counted loop: trip count is bounded
		}
		if pass.Pkg.commentedWith(forStmt.Pos(), "cancel:") {
			continue
		}
		if pass.hasUnpolledCycle(g, loop) {
			kind := "for { ... }"
			if forStmt.Cond != nil {
				kind = "for cond { ... }"
			}
			pass.Reportf(forStmt.Pos(),
				"%s loop has a cycle that never polls cancellation; call checkStop/ctx.Err (or a ctx-taking function) on every path, or justify with a // cancel: comment",
				kind)
		}
	}
}

// hasUnpolledCycle reports whether some cycle through the loop's head
// avoids every polling statement. It searches the natural-loop subgraph for
// a path head -> ... -> head that only crosses non-polling blocks.
func (pass *Pass) hasUnpolledCycle(g *CFG, loop *Loop) bool {
	polls := func(b *Block) bool {
		for _, n := range b.Nodes {
			if pass.nodePolls(n) {
				return true
			}
		}
		return false
	}
	return hasCycleAvoiding(g, loop, polls)
}

// hasCycleAvoiding reports whether some cycle through the loop's head
// avoids every block satisfying polls — the shared engine behind
// cancel-poll and goroutine-leak, which differ only in the predicate.
func hasCycleAvoiding(g *CFG, loop *Loop, polls func(*Block) bool) bool {
	members := g.LoopMembers(loop)
	if polls(loop.Head) {
		return false
	}
	visited := map[*Block]bool{}
	var stack []*Block
	for _, s := range loop.Head.Succs {
		if members[s] && !polls(s) && !visited[s] {
			visited[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if s == loop.Head {
				return true
			}
			if members[s] && !polls(s) && !visited[s] {
				visited[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// nodePolls reports whether executing n polls cancellation. It scans the
// node without descending into function literals: a poll inside a closure
// runs when the closure runs, not on this loop's cycle.
func (pass *Pass) nodePolls(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(child ast.Node) bool {
		if found {
			return false
		}
		switch x := child.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if pass.callPolls(x) {
				found = true
				return false
			}
		case *ast.IncDecStmt:
			if x.Tok.String() == "--" && isBudgetName(exprName(x.X)) {
				found = true
				return false
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isBudgetName(exprName(lhs)) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// callPolls reports whether one call expression counts as a cancellation
// poll.
func (pass *Pass) callPolls(call *ast.CallExpr) bool {
	// A configured poll function, called directly or as a method.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if stringIn(fun.Name, pass.Cfg.CancelFunctions) {
			return true
		}
	case *ast.SelectorExpr:
		if stringIn(fun.Sel.Name, pass.Cfg.CancelFunctions) {
			return true
		}
		// A method on a context value: ctx.Err(), ctx.Done(), ….
		if t := pass.Pkg.Info.TypeOf(fun.X); t != nil && isContextType(t) {
			return true
		}
	}
	// A call that passes a context along is cancellation-aware by the
	// module's ctx-first convention (enforced by the ctx-first analyzer).
	for _, arg := range call.Args {
		if t := pass.Pkg.Info.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}
	return false
}

// isBudgetName reports whether a variable name denotes a work budget.
func isBudgetName(name string) bool {
	return name != "" && strings.Contains(strings.ToLower(name), "budget")
}

// exprName renders an identifier or selector chain ("budget", "s.budget");
// other expressions render as "".
func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprName(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}
