package sia_test

import (
	"context"
	"fmt"
	"time"

	"sia"
)

// ExampleSynthesizeContext reproduces the paper's running example (TPC-H
// Q4, §2): reducing a three-column predicate to just l_shipdate and
// l_commitdate so it can be pushed below the join.
func ExampleSynthesizeContext() {
	schema := sia.NewSchema(
		sia.Date("l_shipdate"), sia.Date("l_commitdate"), sia.Date("o_orderdate"),
	)
	pred, err := sia.ParsePredicate(`l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`, schema)
	if err != nil {
		fmt.Println(err)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := sia.SynthesizeContext(ctx, pred, []string{"l_commitdate", "l_shipdate"}, schema, sia.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Predicate)
	fmt.Println("valid:", res.Valid)
	// Output:
	// -1 * l_commitdate + l_shipdate + 29 > 0 AND -1 * l_shipdate + 536 > 0
	// valid: true
}

// ExampleVerifyReduction checks a hand-written rewrite: the candidate must
// be implied by the original predicate under SQL's three-valued logic.
func ExampleVerifyReduction() {
	schema := sia.NewSchema(sia.Int("a"), sia.Int("b"))
	pred, _ := sia.ParsePredicate("a - b < 20 AND b < 0", schema)
	good, _ := sia.ParsePredicate("a < 20", schema)
	bad, _ := sia.ParsePredicate("a < 10", schema)

	ok, err := sia.VerifyReduction(pred, good, schema)
	fmt.Println(ok, err)
	ok, err = sia.VerifyReduction(pred, bad, schema)
	fmt.Println(ok, err)
	// Output:
	// true <nil>
	// false <nil>
}
