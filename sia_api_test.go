package sia_test

import (
	"testing"

	"sia"
	"sia/internal/predicate"
)

func TestPublicAPIQuickstart(t *testing.T) {
	schema := sia.NewSchema(
		sia.Date("l_shipdate"), sia.Date("l_commitdate"), sia.Date("o_orderdate"),
	)
	pred, err := sia.ParsePredicate(`l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`, schema)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sia.Synthesize(pred, []string{"l_commitdate", "l_shipdate"}, schema, sia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate == nil || !res.Valid {
		t.Fatalf("quickstart failed: %+v", res)
	}
	// The synthesized predicate must be a verified reduction.
	ok, err := sia.VerifyReduction(pred, res.Predicate, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("VerifyReduction rejects the synthesizer's own output: %s", res.Predicate)
	}
	// And it must accept the paper's Q2 tuples: ship 1993-06-19,
	// commit 1993-07-17 is feasible (order 1993-05-31).
	tu := sia.Tuple{
		"l_shipdate":   predicate.IntVal(predicate.DateToDays(1993, 6, 19)),
		"l_commitdate": predicate.IntVal(predicate.DateToDays(1993, 7, 17)),
	}
	if !predicate.Satisfies(res.Predicate, tu) {
		t.Fatalf("boundary tuple rejected by %s", res.Predicate)
	}
}

func TestPublicAPIVerifyHandWrittenRewrite(t *testing.T) {
	schema := sia.NewSchema(sia.Int("a"), sia.Int("b"))
	p, err := sia.ParsePredicate("a - b < 20 AND b < 0", schema)
	if err != nil {
		t.Fatal(err)
	}
	good, err := sia.ParsePredicate("a < 19", schema)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := sia.VerifyReduction(p, good, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("a < 19 is implied by a - b < 20 AND b < 0")
	}
	bad, _ := sia.ParsePredicate("a < 18", schema)
	ok, err = sia.VerifyReduction(p, bad, schema)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("a < 18 is too strong (a = 18, b = -1 satisfies p)")
	}
}

func TestPublicAPIPresets(t *testing.T) {
	for _, opts := range []sia.Options{sia.PresetSIA(), sia.PresetSIAV1(), sia.PresetSIAV2()} {
		if opts.InitialTrue == 0 {
			t.Fatalf("preset not populated: %+v", opts)
		}
	}
	if sia.PresetSIA().MaxIterations != 41 {
		t.Fatal("SIA preset should use the paper's 41 iterations")
	}
}

func TestPublicAPINullable(t *testing.T) {
	c := sia.Nullable(sia.Int("x"))
	if c.NotNull {
		t.Fatal("Nullable should clear NotNull")
	}
}
