// tpch_rewrite demonstrates the full pipeline on generated TPC-H data:
// parse a SQL query, let the optimizer apply the Sia rewrite rule, push
// the synthesized predicates below the join, and execute both plans to
// measure the speedup (the end-to-end flow behind the paper's Fig. 9).
//
// Run with: go run ./examples/tpch_rewrite [-scale 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"sia/internal/core"
	"sia/internal/plan"
	"sia/internal/sql"
	"sia/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 2, "data scale factor (x15k orders)")
	flag.Parse()

	fmt.Printf("generating TPC-H data at scale %g...\n", *scale)
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: *scale})
	cat := plan.NewCatalog()
	cat.Add(orders)
	cat.Add(lineitem)
	fmt.Printf("orders: %d rows, lineitem: %d rows\n\n", orders.NumRows(), lineitem.NumRows())

	stmt := `SELECT * FROM lineitem, orders
		WHERE o_orderkey = l_orderkey
		AND l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`
	fmt.Println("query:")
	fmt.Println(stmt)
	fmt.Println()

	parsed, err := sql.Parse(stmt, cat)
	if err != nil {
		log.Fatal(err)
	}
	node, err := parsed.Plan(cat)
	if err != nil {
		log.Fatal(err)
	}

	// Plain optimization: pushdown alone cannot move anything to
	// lineitem (every conjunct touches o_orderdate).
	origPlan := plan.PushDownFilters(node)
	fmt.Println("plan without Sia:")
	fmt.Print(plan.Explain(origPlan))

	// The Sia rule synthesizes per-side reductions and conjoins them;
	// pushdown then moves them below the join.
	rewritten, infos, err := plan.SiaRewrite(node, parsed.Schema, core.PresetSIA())
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		if info.Result.Predicate != nil {
			fmt.Printf("\nsynthesized for the %s side (%v):\n  %v\n", info.Side, info.Cols, info.Result.Predicate)
		}
	}
	siaPlan := plan.PushDownFilters(rewritten)
	fmt.Println("\nplan with Sia:")
	fmt.Print(plan.Explain(siaPlan))

	origTable, origStats, err := plan.Execute(origPlan, cat)
	if err != nil {
		log.Fatal(err)
	}
	siaTable, siaStats, err := plan.Execute(siaPlan, cat)
	if err != nil {
		log.Fatal(err)
	}
	if origTable.NumRows() != siaTable.NumRows() {
		log.Fatalf("rewrite changed the result: %d vs %d rows", origTable.NumRows(), siaTable.NumRows())
	}
	fmt.Printf("\nresults identical: %d rows\n", origTable.NumRows())
	fmt.Printf("original:  %v (join input %d rows)\n", origStats.Elapsed, origStats.JoinInputRows)
	fmt.Printf("rewritten: %v (join input %d rows)\n", siaStats.Elapsed, siaStats.JoinInputRows)
	fmt.Printf("speedup:   %.2fx\n", float64(origStats.Elapsed)/float64(siaStats.Elapsed))
}
