// Quickstart: synthesize a lineitem-only predicate from the paper's
// motivating query (§2) using the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sia"
)

func main() {
	// The §2 predicate joins lineitem and orders; every condition touches
	// o_orderdate, so nothing can be pushed below the join to lineitem.
	schema := sia.NewSchema(
		sia.Date("l_shipdate"),
		sia.Date("l_commitdate"),
		sia.Date("o_orderdate"),
	)
	pred, err := sia.ParsePredicate(`
		l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`, schema)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("original predicate:")
	fmt.Println(" ", pred)
	fmt.Println()

	// Ask Sia for a predicate that uses only the two lineitem columns.
	// The context bounds the whole synthesis; an expired deadline surfaces
	// as an error matching sia.ErrTimeout.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := sia.SynthesizeContext(ctx, pred, []string{"l_commitdate", "l_shipdate"}, schema, sia.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if res.Predicate == nil {
		log.Fatalf("no predicate synthesized (%s)", res.GaveUp)
	}

	fmt.Println("synthesized lineitem-only predicate (safe to push below the join):")
	fmt.Println(" ", res.Predicate)
	fmt.Println()
	status := "valid"
	if res.Optimal {
		status += ", proven optimal"
	}
	fmt.Printf("status: %s after %d iterations (%d TRUE / %d FALSE samples)\n",
		status, res.Iterations, res.TrueSamples, res.FalseSamples)
	fmt.Printf("time:   generation %v, learning %v, validation %v\n",
		res.Timing.Generation, res.Timing.Learning, res.Timing.Validation)

	// The single-column reductions from the paper's Q2 work too.
	for _, cols := range [][]string{{"l_shipdate"}, {"l_commitdate"}} {
		r, err := sia.SynthesizeContext(ctx, pred, cols, schema, sia.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nreduction to %v:\n  %v (optimal=%v)\n", cols, r.Predicate, r.Optimal)
	}
}
