// optimizer_pushdown showcases the predicate-centric rewrite rules the
// synthesized predicates unlock (§1 of the paper): pushdown below joins,
// pushdown below aggregation, constant propagation, and the syntax-driven
// transitive-closure baseline that Sia subsumes.
//
// Run with: go run ./examples/optimizer_pushdown
package main

import (
	"fmt"
	"log"

	"sia/internal/engine"
	"sia/internal/plan"
	"sia/internal/predicate"
	"sia/internal/tpch"
)

// parse parses a static predicate, exiting on error: the example's inputs
// are fixed strings, so a parse failure is a bug in the example itself.
func parse(input string, schema *predicate.Schema) predicate.Predicate {
	p, err := predicate.Parse(input, schema)
	if err != nil {
		log.Fatalf("optimizer_pushdown: %v", err)
	}
	return p
}

func main() {
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: 0.5})
	cat := plan.NewCatalog()
	cat.Add(orders)
	cat.Add(lineitem)
	schema := tpch.JoinSchema()

	fmt.Println("== 1. Pushdown below a join ==")
	pred := parse(
		"o_orderdate < DATE '1994-01-01' AND l_shipdate < DATE '1994-06-01' AND l_shipdate - o_orderdate < 60",
		schema)
	li, _ := plan.NewScan(cat, "lineitem")
	od, _ := plan.NewScan(cat, "orders")
	join := &plan.Join{Left: li, Right: od, LeftKey: "l_orderkey", RightKey: "o_orderkey"}
	before := &plan.Filter{Pred: pred, Input: join}
	after := plan.PushDownFilters(before)
	fmt.Println("before:")
	fmt.Print(plan.Explain(before))
	fmt.Println("after (single-table conjuncts moved below the join; the cross-table one stays):")
	fmt.Print(plan.Explain(after))

	fmt.Println("== 2. Pushdown below aggregation ==")
	agg := &plan.Aggregate{
		GroupBy: []string{"l_orderkey"},
		Aggs:    []engine.AggSpec{{Func: engine.AggCount, As: "items"}, {Func: engine.AggSum, Col: "l_quantity", As: "qty"}},
		Input:   li,
	}
	groupFilter := parse("l_orderkey < 1000", tpch.LineitemSchema())
	aggPlan := &plan.Filter{Pred: groupFilter, Input: agg}
	fmt.Println("before:")
	fmt.Print(plan.Explain(aggPlan))
	fmt.Println("after (the GROUP-BY-column filter moved below the aggregate):")
	fmt.Print(plan.Explain(plan.PushDownFilters(aggPlan)))

	fmt.Println("== 3. Constant propagation ==")
	cp := parse("l_quantity = 5 AND l_quantity + l_extendedprice > 20", tpch.LineitemSchema())
	fmt.Printf("before: %v\nafter:  %v\n\n", cp, plan.ConstantPropagation(cp))

	fmt.Println("== 4. Transitive closure (the paper's syntax-driven baseline) ==")
	tc := parse(
		"l_shipdate - o_orderdate <= 19 AND o_orderdate <= DATE '1993-05-31'", schema)
	derived := plan.TransitiveClosureReduce(tc, []string{"l_shipdate"})
	fmt.Printf("from:    %v\nderived: %v\n", tc, derived)
	fmt.Println("\nBut give it the arithmetic form from the paper's §2 and it derives nothing")
	fmt.Println("(coefficients != ±1 are outside the difference-constraint fragment):")
	hard := parse(
		"l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10 AND o_orderdate < DATE '1993-06-01'", schema)
	if got := plan.TransitiveClosureReduce(hard, []string{"l_commitdate", "l_shipdate"}); got == nil {
		fmt.Println("derived: <nothing> — this is the gap Sia's learned predicates fill")
	} else {
		log.Fatalf("unexpected derivation: %v", got)
	}

	// Sanity: both plans of part 1 return identical results.
	a, _, err := plan.Execute(before, cat)
	if err != nil {
		log.Fatal(err)
	}
	b, _, err := plan.Execute(after, cat)
	if err != nil {
		log.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		log.Fatalf("pushdown changed results: %d vs %d", a.NumRows(), b.NumRows())
	}
	fmt.Printf("\npushdown sanity check: both plans return %d rows\n", a.NumRows())
}
