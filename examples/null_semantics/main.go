// null_semantics demonstrates why Sia verifies candidates under SQL's
// three-valued logic (§5.2): a predicate that is a correct implication on
// NULL-free data may silently drop rows once NULLs appear, so validity
// depends on the catalog's nullability.
//
// Run with: go run ./examples/null_semantics
package main

import (
	"fmt"
	"log"

	"sia"
	"sia/internal/predicate"
)

func main() {
	// p is TRUE whenever b is non-NULL (b = b), regardless of a — even
	// when a is NULL. The candidate (a = a) is TRUE only when a is
	// non-NULL.
	const pSrc = "a > 0 OR b = b"
	const candSrc = "a = a"

	run := func(name string, schema *sia.Schema) {
		p, err := sia.ParsePredicate(pSrc, schema)
		if err != nil {
			log.Fatal(err)
		}
		cand, err := sia.ParsePredicate(candSrc, schema)
		if err != nil {
			log.Fatal(err)
		}
		valid, err := sia.VerifyReduction(p, cand, schema)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s p = %q implies candidate %q?  %v\n", name, pSrc, candSrc, valid)
	}

	notNull := sia.NewSchema(sia.Int("a"), sia.Int("b"))
	nullable := sia.NewSchema(sia.Nullable(sia.Int("a")), sia.Nullable(sia.Int("b")))
	run("NOT NULL columns:", notNull)
	run("nullable columns:", nullable)

	// Show the counter-example concretely with the evaluator.
	p, _ := sia.ParsePredicate(pSrc, nullable)
	cand, _ := sia.ParsePredicate(candSrc, nullable)
	tuple := sia.Tuple{"a": predicate.NullValue(), "b": predicate.IntVal(0)}
	fmt.Printf("\ncounter-example tuple {a: NULL, b: 0}:\n")
	fmt.Printf("  p evaluates to      %v  (accepted)\n", predicate.Eval(p, tuple))
	fmt.Printf("  candidate evaluates %v  (NOT accepted — the implication breaks)\n", predicate.Eval(cand, tuple))
	fmt.Println("\nOn a NOT NULL catalog (like TPC-H) the tuple cannot exist, so the")
	fmt.Println("candidate is a perfectly valid reduction there.")
}
