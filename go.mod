module sia

go 1.22
