// Benchmarks regenerating the paper's tables and figures (one per
// experiment) plus ablations for the design choices DESIGN.md calls out.
// Each benchmark prints its rendered result once via b.Log, so
//
//	go test -bench=. -benchmem
//
// both times the experiments and reproduces their outputs. Benchmarks use
// laptop-scale configurations; cmd/siabench exposes flags for paper scale.
package sia_test

import (
	"sync"
	"testing"

	"sia"
	"sia/internal/core"
	"sia/internal/engine"
	"sia/internal/experiments"
	"sia/internal/maxcompute"
	"sia/internal/predtest"
	"sia/internal/tpch"
)

// benchCfg is shared by the sweep-based benchmarks so the expensive
// synthesis sweep runs once.
var (
	benchCfg = experiments.Config{Queries: 15, ScaleFactors: []float64{0.3, 3}, MaxIterations: 41}

	sweepOnce    sync.Once
	sweepRecords []experiments.RunRecord
	sweepErr     error

	fig9Once    sync.Once
	fig9Records []experiments.RuntimeRecord
	fig9Err     error
)

func sweep(b *testing.B) []experiments.RunRecord {
	b.Helper()
	sweepOnce.Do(func() { sweepRecords, sweepErr = experiments.SynthesisSweep(benchCfg) })
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepRecords
}

func fig9(b *testing.B) []experiments.RuntimeRecord {
	b.Helper()
	fig9Once.Do(func() { fig9Records, fig9Err = experiments.Fig9(benchCfg) })
	if fig9Err != nil {
		b.Fatal(fig9Err)
	}
	return fig9Records
}

// BenchmarkMotivatingExample reproduces §2: the hand-rewritten Q2 vs Q1.
func BenchmarkMotivatingExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := experiments.Motivating(1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderMotivating(m))
		}
	}
}

// BenchmarkTable2Efficacy reproduces Table 2 (valid/optimal counts).
func BenchmarkTable2Efficacy(b *testing.B) {
	records := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(records)
		if i == 0 {
			b.Log("\n" + experiments.RenderTable2(rows))
		}
	}
}

// BenchmarkTable3Efficiency reproduces Table 3 (time breakdown).
func BenchmarkTable3Efficiency(b *testing.B) {
	records := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(records)
		if i == 0 {
			b.Log("\n" + experiments.RenderTable3(rows))
		}
	}
}

// BenchmarkTable4Selectivity reproduces Table 4 (selectivity by outcome).
func BenchmarkTable4Selectivity(b *testing.B) {
	records := fig9(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums := experiments.Summarize(records)
		if i == 0 {
			b.Log("\n" + experiments.RenderFig9(nil, sums))
		}
	}
}

// BenchmarkFig6CaseStudy reproduces Fig. 6 (simulated MaxCompute funnel).
func BenchmarkFig6CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		qs, err := maxcompute.Simulate(maxcompute.Config{N: 500})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + experiments.RenderFig6(qs))
		}
	}
}

// BenchmarkFig7Iterations reproduces Fig. 7 (iterations to optimal).
func BenchmarkFig7Iterations(b *testing.B) {
	records := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig7(records)
		if i == 0 {
			b.Log("\n" + experiments.RenderFig7(f))
		}
	}
}

// BenchmarkFig8Samples reproduces Fig. 8 (sample-count distributions).
func BenchmarkFig8Samples(b *testing.B) {
	records := sweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := experiments.Fig8(records)
		if i == 0 {
			b.Log("\n" + experiments.RenderFig8(f))
		}
	}
}

// BenchmarkFig9Runtime reproduces Fig. 9 (original vs rewritten runtimes).
func BenchmarkFig9Runtime(b *testing.B) {
	records := fig9(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sums := experiments.Summarize(records)
		if i == 0 {
			b.Log("\n" + experiments.RenderFig9(records[:min(8, len(records))], sums))
		}
	}
}

// paperPredicate is the §3.2 walkthrough predicate used by the synthesis
// micro-benchmarks and ablations.
func paperPredicate() (sia.Predicate, *sia.Schema) {
	schema := sia.NewSchema(sia.Int("a1"), sia.Int("a2"), sia.Int("b1"))
	p, err := sia.ParsePredicate("a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0", schema)
	if err != nil {
		panic(err)
	}
	return p, schema
}

// BenchmarkSynthesizeOneColumn measures a single-column synthesis.
func BenchmarkSynthesizeOneColumn(b *testing.B) {
	p, schema := paperPredicate()
	for i := 0; i < b.N; i++ {
		if _, err := sia.Synthesize(p, []string{"a1"}, schema, sia.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeTwoColumns measures the §3.2 two-column walkthrough.
func BenchmarkSynthesizeTwoColumns(b *testing.B) {
	p, schema := paperPredicate()
	for i := 0; i < b.N; i++ {
		if _, err := sia.Synthesize(p, []string{"a1", "a2"}, schema, sia.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIterative compares the paper's counter-example-guided SIA
// against the one-shot baselines — the central ablation (Tables 1-3 in
// miniature).
func BenchmarkAblationIterative(b *testing.B) {
	p, schema := paperPredicate()
	for _, preset := range []struct {
		name string
		opts core.Options
	}{
		{"SIA", core.PresetSIA()},
		{"SIA_v1", core.PresetSIAV1()},
		{"SIA_v2", core.PresetSIAV2()},
	} {
		b.Run(preset.name, func(b *testing.B) {
			valid := 0
			for i := 0; i < b.N; i++ {
				res, err := core.Synthesize(p, []string{"a1", "a2"}, schema, preset.opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Predicate != nil && res.Valid {
					valid++
				}
			}
			b.ReportMetric(float64(valid)/float64(b.N), "valid/op")
		})
	}
}

// BenchmarkAblationRationalize sweeps the integer-coefficient bound used
// when converting SVM hyperplanes to exact predicates: tighter bounds mean
// cheaper Cooper eliminations but coarser planes.
func BenchmarkAblationRationalize(b *testing.B) {
	p, schema := paperPredicate()
	for _, maxDen := range []int64{2, 8, 32} {
		b.Run(denName(maxDen), func(b *testing.B) {
			optimal := 0
			for i := 0; i < b.N; i++ {
				opts := core.PresetSIA()
				opts.MaxDenominator = maxDen
				res, err := core.Synthesize(p, []string{"a1", "a2"}, schema, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Optimal {
					optimal++
				}
			}
			b.ReportMetric(float64(optimal)/float64(b.N), "optimal/op")
		})
	}
}

func denName(d int64) string {
	switch d {
	case 2:
		return "maxCoeff=2"
	case 8:
		return "maxCoeff=8"
	default:
		return "maxCoeff=32"
	}
}

// BenchmarkEngineJoin measures the raw fused hash join on TPC-H-shaped
// data, the substrate cost underlying Fig. 9.
func BenchmarkEngineJoin(b *testing.B) {
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: 1})
	oPred := predtest.MustParse("o_orderdate < DATE '1993-06-01'", tpch.OrdersSchema())
	liPred := predtest.MustParse("l_shipdate < DATE '1993-06-20'", tpch.LineitemSchema())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := engine.HashJoinWhere(lineitem, orders, "l_orderkey", "o_orderkey", liPred, oPred)
		if err != nil {
			b.Fatal(err)
		}
		if out.NumRows() == 0 {
			b.Fatal("empty join result")
		}
	}
}

// BenchmarkParallelScanJoin measures the morsel-driven engine on the
// Fig. 9-shaped scan+join at SF 3, at 1 and 4 workers. The acceptance
// target is ≥2x at 4 workers; results are byte-identical at any width.
func BenchmarkParallelScanJoin(b *testing.B) {
	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: 3})
	oPred := predtest.MustParse("o_orderdate < DATE '1993-06-01'", tpch.OrdersSchema())
	liPred := predtest.MustParse("l_shipdate < DATE '1993-06-20'", tpch.LineitemSchema())
	for _, par := range []int{1, 4} {
		b.Run(parName(par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _, err := engine.HashJoinWherePar(lineitem, orders, "l_orderkey", "o_orderkey", liPred, oPred, par)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() == 0 {
					b.Fatal("empty join result")
				}
			}
		})
	}
}

func parName(par int) string {
	if par == 1 {
		return "par=1"
	}
	return "par=4"
}
