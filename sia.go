// Package sia is the public API of the Sia predicate synthesizer
// (Zhou et al., "Sia: Optimizing Queries using Learned Predicates",
// SIGMOD 2021). Given a SQL predicate p over columns Cols and a target
// subset Cols' ⊆ Cols, Sia learns — with an SVM guided by SMT-generated
// counter-examples — a predicate p' over only Cols' that is implied by p.
// Conjoining p' to the query preserves its semantics while letting the
// optimizer push p' below joins and aggregations.
//
// Quick start:
//
//	schema := sia.NewSchema(
//		sia.Date("l_shipdate"), sia.Date("l_commitdate"), sia.Date("o_orderdate"),
//	)
//	pred, _ := sia.ParsePredicate(`l_shipdate - o_orderdate < 20
//		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
//		AND o_orderdate < DATE '1993-06-01'`, schema)
//	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
//	defer cancel()
//	res, _ := sia.SynthesizeContext(ctx, pred, []string{"l_commitdate", "l_shipdate"}, schema, sia.Options{})
//	fmt.Println(res.Predicate) // e.g. -1*l_commitdate + l_shipdate + 29 > 0 AND ...
//
// SynthesizeContext is the primary entry point: cancelling ctx (or letting
// its deadline pass) stops the loop — including a solver call in progress —
// and returns an error matching ErrTimeout. Failures are classified with
// the package's sentinel errors (ErrTimeout, ErrBudget, ErrInvalidOptions)
// so callers can dispatch with errors.Is.
//
// The heavy lifting lives in the internal packages: internal/core (the
// CEGIS loop), internal/smt (a from-scratch Presburger/linear-real solver
// standing in for Z3), internal/svm (a linear SVM), and internal/plan +
// internal/engine (a query optimizer and columnar executor used by the
// evaluation harness).
package sia

import (
	"context"

	"sia/internal/core"
	"sia/internal/predicate"
)

// Sentinel errors classifying synthesis failures. Match them with
// errors.Is; every error returned by the package's exported functions
// wraps exactly one of them or is a parse error from ParsePredicate.
var (
	// ErrTimeout reports that the caller's context was cancelled or its
	// deadline passed before synthesis finished. Errors matching it also
	// match the underlying context.Canceled or context.DeadlineExceeded.
	// (An internal Options.Timeout expiry is not an error: it returns the
	// best result so far with Result.GaveUp set.)
	ErrTimeout = core.ErrTimeout
	// ErrBudget reports that the SMT solver exhausted a structural budget
	// (formula size, elimination blow-up) from which no partial result
	// could be salvaged.
	ErrBudget = core.ErrBudget
	// ErrInvalidOptions reports malformed Options (negative budgets) or
	// malformed arguments (unknown target columns, nil schema).
	ErrInvalidOptions = core.ErrInvalidOptions
)

// Re-exported core types. See the internal/core and internal/predicate
// documentation for details.
type (
	// Options configures the synthesis loop (iteration budget, sample
	// counts, solver limits). The zero value is the paper's SIA
	// configuration.
	Options = core.Options
	// Result is a synthesis outcome: the learned predicate plus validity,
	// optimality, iteration and timing metadata.
	Result = core.Result
	// Predicate is a parsed boolean expression tree.
	Predicate = predicate.Predicate
	// Schema declares column names, types and nullability.
	Schema = predicate.Schema
	// Column declares one column.
	Column = predicate.Column
	// Tuple maps column names to values for evaluation.
	Tuple = predicate.Tuple
)

// SynthesizeContext learns a valid (and, when the loop converges, optimal)
// dimensionality reduction of p to cols. It is the primary synthesis entry
// point: the CEGIS loop polls ctx between and during solver calls, so
// cancelling ctx or exceeding its deadline aborts promptly with an error
// matching ErrTimeout (and ctx.Err()). See core.SynthesizeContext.
func SynthesizeContext(ctx context.Context, p Predicate, cols []string, schema *Schema, opts Options) (*Result, error) {
	return core.SynthesizeContext(ctx, p, cols, schema, opts)
}

// Synthesize is SynthesizeContext with context.Background().
//
// Deprecated: it cannot be cancelled or given a caller deadline — only the
// internal Options.Timeout bounds it. New code should call
// SynthesizeContext; this form remains for existing callers and one-shot
// tools where an unbounded run is acceptable.
func Synthesize(p Predicate, cols []string, schema *Schema, opts Options) (*Result, error) {
	return core.SynthesizeContext(context.Background(), p, cols, schema, opts)
}

// VerifyReductionContext reports whether candidate is implied by p under
// SQL's three-valued logic — the check Sia runs on every learned
// candidate, exposed for validating hand-written rewrites. Cancelling ctx
// aborts the solver call with an error matching ErrTimeout.
func VerifyReductionContext(ctx context.Context, p, candidate Predicate, schema *Schema) (bool, error) {
	return core.VerifyReductionContext(ctx, p, candidate, schema)
}

// VerifyReduction is VerifyReductionContext with context.Background().
//
// Deprecated: prefer VerifyReductionContext so implication checks inherit
// request deadlines; this form remains for existing callers.
func VerifyReduction(p, candidate Predicate, schema *Schema) (bool, error) {
	return core.VerifyReductionContext(context.Background(), p, candidate, schema)
}

// ParsePredicate parses a SQL boolean expression against a schema.
func ParsePredicate(src string, schema *Schema) (Predicate, error) {
	return predicate.Parse(src, schema)
}

// NewSchema builds a schema from columns (see Int, Double, Date helpers).
func NewSchema(cols ...Column) *Schema { return predicate.NewSchema(cols...) }

// Int declares a NOT NULL integer column.
func Int(name string) Column {
	return Column{Name: name, Type: predicate.TypeInteger, NotNull: true}
}

// Double declares a NOT NULL double-precision column.
func Double(name string) Column {
	return Column{Name: name, Type: predicate.TypeDouble, NotNull: true}
}

// Date declares a NOT NULL date column (stored as days since 1992-01-01).
func Date(name string) Column {
	return Column{Name: name, Type: predicate.TypeDate, NotNull: true}
}

// Nullable marks a column as nullable; Sia's verifier then reasons about
// the predicate under SQL's three-valued logic for that column.
func Nullable(c Column) Column {
	c.NotNull = false
	return c
}

// The paper's baseline configurations (Table 1).
var (
	// PresetSIA is the full counter-example-guided configuration.
	PresetSIA = core.PresetSIA
	// PresetSIAV1 is the one-shot baseline with 110+110 samples.
	PresetSIAV1 = core.PresetSIAV1
	// PresetSIAV2 is the one-shot baseline with 220+220 samples.
	PresetSIAV2 = core.PresetSIAV2
)
