#!/bin/sh
# smoke-cluster.sh — black-box smoke test of a 3-replica sharded siad
# cluster.
#
# Builds siad, starts three replicas that name each other via -peers,
# then asserts the sharded serving tier's contract end to end:
#
#   1. a request through any ingress is answered 200 and names the same
#      owning shard regardless of which replica received it;
#   2. a repeat through a different ingress is a cache hit (the cluster
#      runs ONE synthesis for one logical request);
#   3. /v1/stats on some replica reports forwards > 0 (the hop happened);
#   4. SIGTERM on a replica with -snapshot produces a clean exit AND a
#      snapshot file, and a restarted replica reports restored entries.
#
# The in-process Go tests cover the same logic against httptest servers;
# this script is the only place real processes, real sockets and real
# signals exercise it.
set -eu

PORT1="${SIAD_PORT1:-18081}"
PORT2="${SIAD_PORT2:-18082}"
PORT3="${SIAD_PORT3:-18083}"
HOST=127.0.0.1
PEERS="$HOST:$PORT1,$HOST:$PORT2,$HOST:$PORT3"
WORK="$(mktemp -d)"
BIN="$WORK/siad"

PIDS=""
fail() {
    echo "smoke-cluster: $*" >&2
    for log in "$WORK"/log.*; do
        [ -f "$log" ] || continue
        echo "--- $log ---" >&2
        cat "$log" >&2
    done
    exit 1
}
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
}
trap cleanup EXIT

echo "smoke-cluster: building"
go build -o "$BIN" ./cmd/siad

start_replica() { # $1 = port index (1..3)
    eval "port=\$PORT$1"
    "$BIN" -addr "$HOST:$port" -self "$HOST:$port" -peers "$PEERS" \
        -snapshot "$WORK/snap.$1" 2>"$WORK/log.$1" &
    pid=$!
    PIDS="$PIDS $pid"
    eval "PID$1=$pid"
}

start_replica 1
start_replica 2
start_replica 3

for port in "$PORT1" "$PORT2" "$PORT3"; do
    i=0
    until curl -fsS "http://$HOST:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -ge 50 ] && fail "replica on :$port not healthy within 5s"
        sleep 0.1
    done
done
echo "smoke-cluster: 3 replicas healthy"

REQ='{
    "predicate": "a - b < 20 AND b < 0",
    "cols": ["a"],
    "schema": [{"name": "a", "type": "int"}, {"name": "b", "type": "int"}]
}'
synth() { # $1 = port; prints "status shard cached"
    curl -sS -o "$WORK/body" -w '%{http_code}' \
        -H 'Content-Type: application/json' \
        -D "$WORK/headers" \
        -X POST "http://$HOST:$1/v1/synthesize" -d "$REQ" || fail "POST to :$1 failed"
    shard="$(sed -n 's/^X-Sia-Shard: *//Ip' "$WORK/headers" | tr -d '\r')"
    cached="$(sed -n 's/.*"cached": *\(true\|false\).*/\1/p' "$WORK/body")"
    echo " $shard $cached"
}

# 1+2: same owner from every ingress; repeats are hits.
OWNER=""
for port in "$PORT1" "$PORT2" "$PORT3"; do
    set -- $(synth "$port")
    status="$1"; shard="$2"; cached="$3"
    [ "$status" = "200" ] || fail "ingress :$port answered $status"
    [ -n "$shard" ] || fail "ingress :$port named no shard"
    if [ -z "$OWNER" ]; then
        OWNER="$shard"
    elif [ "$shard" != "$OWNER" ]; then
        fail "ingress :$port routed to $shard, first ingress to $OWNER"
    fi
    if [ "$port" != "$PORT1" ] && [ "$cached" != "true" ]; then
        fail "repeat via :$port was not a cache hit"
    fi
done
echo "smoke-cluster: deterministic routing to $OWNER, repeats hit"

# 3: at least one replica forwarded (unless the first ingress owned the
# key, forwards happen on the others too; summed they must be > 0 when
# the owner differs from some ingress — with 3 replicas that is certain).
TOTAL_FWD=0
for port in "$PORT1" "$PORT2" "$PORT3"; do
    fwd="$(curl -fsS "http://$HOST:$port/v1/stats" | sed -n 's/.*"forwards": *\([0-9]*\).*/\1/p')"
    TOTAL_FWD=$((TOTAL_FWD + ${fwd:-0}))
done
[ "$TOTAL_FWD" -gt 0 ] || fail "no replica reports a forward"
echo "smoke-cluster: $TOTAL_FWD forwards observed"

# 4: SIGTERM the owner, require clean exit + snapshot on disk, restart
# it and require restored entries.
OWNER_IDX=""
case "$OWNER" in
    *:"$PORT1") OWNER_IDX=1 ;;
    *:"$PORT2") OWNER_IDX=2 ;;
    *:"$PORT3") OWNER_IDX=3 ;;
    *) fail "owner $OWNER is not a cluster member" ;;
esac
eval "OWNER_PID=\$PID$OWNER_IDX"
eval "OWNER_PORT=\$PORT$OWNER_IDX"

kill -TERM "$OWNER_PID"
i=0
while kill -0 "$OWNER_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "owner still running 5s after SIGTERM"
    sleep 0.1
done
wait "$OWNER_PID" || fail "owner exited non-zero after SIGTERM"
[ -s "$WORK/snap.$OWNER_IDX" ] || fail "drain left no snapshot at snap.$OWNER_IDX"
echo "smoke-cluster: owner drained, snapshot written"

start_replica "$OWNER_IDX"
i=0
until curl -fsS "http://$HOST:$OWNER_PORT/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "restarted owner not healthy within 5s"
    sleep 0.1
done
RESTORED="$(curl -fsS "http://$HOST:$OWNER_PORT/v1/stats" |
    sed -n 's/.*"snapshot_restored": *\([0-9]*\).*/\1/p')"
[ "${RESTORED:-0}" -gt 0 ] || fail "restarted owner restored no entries"

# The warmed replica answers its owned key from cache.
set -- $(synth "$OWNER_PORT")
[ "$1" = "200" ] && [ "$3" = "true" ] || fail "restarted owner missed its own key (status $1 cached $3)"
echo "smoke-cluster: restart warmed $RESTORED entries, key served from cache"
echo "smoke-cluster: ok"
