#!/bin/sh
# smoke-siad.sh — black-box smoke test of the siad daemon.
#
# Builds siad, starts it on a scratch port, waits for /healthz, asserts
# /metrics serves the Prometheus exposition with the advertised series,
# then sends SIGTERM and requires a clean (exit 0) shutdown within 5s.
# This is the only place the daemon's process-level behaviour — flag
# parsing, signal handling, graceful drain — is exercised for real; the
# Go tests drive the handlers in-process.
set -eu

ADDR="${SIAD_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/siad"
LOG="$(mktemp)"

fail() {
    echo "smoke-siad: $*" >&2
    echo "--- siad log ---" >&2
    cat "$LOG" >&2
    exit 1
}

echo "smoke-siad: building"
go build -o "$BIN" ./cmd/siad

"$BIN" -addr "$ADDR" 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait up to 5s for the daemon to come up.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "daemon did not become healthy within 5s"
    kill -0 "$PID" 2>/dev/null || fail "daemon exited before becoming healthy"
    sleep 0.1
done
echo "smoke-siad: healthy"

# One real synthesis populates the cache and solver metrics. The legacy
# /synthesize alias must keep answering (deprecated, not removed); the
# explicit Content-Type matters — siad refuses non-JSON media types with
# 415 (curl -d would otherwise send application/x-www-form-urlencoded).
curl -fsS -X POST "$BASE/synthesize" -H 'Content-Type: application/json' -d '{
    "predicate": "a - b < 20 AND b < 0",
    "cols": ["a"],
    "schema": [{"name": "a", "type": "int"}, {"name": "b", "type": "int"}]
}' >/dev/null || fail "synthesize request failed"

METRICS="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics failed"
for name in \
    sia_http_requests_total \
    sia_cache_misses_total \
    sia_synthesis_duration_seconds_count \
    sia_smt_sat_queries_total; do
    echo "$METRICS" | grep -q "$name" || fail "/metrics missing $name"
done
echo "smoke-siad: metrics ok"

# Graceful shutdown: SIGTERM must yield exit 0 within 5s.
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -ge 50 ] && fail "daemon still running 5s after SIGTERM"
    sleep 0.1
done
trap - EXIT
# With process substitution unavailable in POSIX sh, recover the exit
# status via wait (works because siad is our direct child).
if wait "$PID"; then
    echo "smoke-siad: clean shutdown"
else
    fail "daemon exited non-zero after SIGTERM"
fi
