// Command sia synthesizes a valid predicate over a target column set from
// a SQL predicate, printing the result and synthesis statistics.
//
// Usage:
//
//	sia -schema 'l_shipdate:date,l_commitdate:date,o_orderdate:date' \
//	    -cols l_commitdate,l_shipdate \
//	    -pred "l_shipdate - o_orderdate < 20 AND
//	           l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10 AND
//	           o_orderdate < DATE '1993-06-01'"
//
// Column types: int, double, date, timestamp; append '?' for nullable
// (e.g. "v:int?").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sia/internal/core"
	"sia/internal/predicate"
)

func main() {
	schemaFlag := flag.String("schema", "", "comma-separated name:type column list")
	predFlag := flag.String("pred", "", "SQL predicate to reduce")
	colsFlag := flag.String("cols", "", "comma-separated target columns")
	maxIter := flag.Int("max-iterations", 41, "learning-loop iteration budget")
	variant := flag.String("variant", "sia", "configuration: sia, sia_v1, sia_v2")
	timeout := flag.Duration("timeout", 30*time.Second, "synthesis wall-clock budget")
	verbose := flag.Bool("v", false, "print timing and sample statistics")
	flag.Parse()

	if *schemaFlag == "" || *predFlag == "" || *colsFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	schema, err := parseSchema(*schemaFlag)
	if err != nil {
		fatal(err)
	}
	pred, err := predicate.Parse(*predFlag, schema)
	if err != nil {
		fatal(err)
	}
	cols := strings.Split(*colsFlag, ",")
	for i := range cols {
		cols[i] = strings.TrimSpace(cols[i])
	}

	var opts core.Options
	switch strings.ToLower(*variant) {
	case "sia":
		opts = core.PresetSIA()
	case "sia_v1":
		opts = core.PresetSIAV1()
	case "sia_v2":
		opts = core.PresetSIAV2()
	default:
		fatal(fmt.Errorf("unknown variant %q", *variant))
	}
	opts.MaxIterations = *maxIter
	opts.Timeout = *timeout

	res, err := core.Synthesize(pred, cols, schema, opts)
	if err != nil {
		fatal(err)
	}
	switch {
	case res.Predicate == nil:
		fmt.Printf("no non-trivial valid predicate (%s)\n", res.GaveUp)
	default:
		fmt.Println(res.Predicate)
		status := "valid"
		if res.Optimal {
			status = "valid, optimal"
		}
		fmt.Printf("-- %s after %d iterations\n", status, res.Iterations)
	}
	if *verbose {
		fmt.Printf("-- samples: %d TRUE, %d FALSE\n", res.TrueSamples, res.FalseSamples)
		fmt.Printf("-- time: generation %v, learning %v, validation %v\n",
			res.Timing.Generation.Round(time.Microsecond),
			res.Timing.Learning.Round(time.Microsecond),
			res.Timing.Validation.Round(time.Microsecond))
	}
	if res.Predicate == nil {
		os.Exit(1)
	}
}

func parseSchema(s string) (*predicate.Schema, error) {
	var cols []predicate.Column
	for _, part := range strings.Split(s, ",") {
		nameType := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nameType) != 2 {
			return nil, fmt.Errorf("bad column spec %q (want name:type)", part)
		}
		typeName := nameType[1]
		nullable := strings.HasSuffix(typeName, "?")
		typeName = strings.TrimSuffix(typeName, "?")
		var t predicate.Type
		switch strings.ToLower(typeName) {
		case "int", "integer":
			t = predicate.TypeInteger
		case "double", "float":
			t = predicate.TypeDouble
		case "date":
			t = predicate.TypeDate
		case "timestamp":
			t = predicate.TypeTimestamp
		default:
			return nil, fmt.Errorf("unknown type %q", typeName)
		}
		cols = append(cols, predicate.Column{Name: nameType[0], Type: t, NotNull: !nullable})
	}
	return predicate.NewSchema(cols...), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sia:", err)
	os.Exit(1)
}
