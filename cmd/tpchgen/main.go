// Command tpchgen generates the TPC-H-shaped orders and lineitem tables
// and writes them as CSV (for inspection or loading elsewhere) or as
// disk-backed segment files (internal/storage's zone-mapped columnar
// format, ready for SegmentTable.Open).
//
// Usage:
//
//	tpchgen -scale 1 -table lineitem > lineitem.csv
//	tpchgen -scale 10 -table lineitem -segments ./data/lineitem -segment-rows 8192
//
// Output is deterministic: the same -scale, -table, -seed (and, for
// segment output, -segment-rows) always produce byte-identical output, so
// generated data can be diffed, checksummed, and regenerated instead of
// checked in. -seed 0 means the default seed (19920101); any other value
// selects an independent but equally reproducible dataset.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sia/internal/engine"
	"sia/internal/predicate"
	"sia/internal/storage"
	"sia/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 1, "scale factor (x15k orders; 100 = TPC-H SF 1)")
	table := flag.String("table", "lineitem", "orders or lineitem")
	seed := flag.Int64("seed", 0, "generator seed (0 = default; output is deterministic per seed)")
	segments := flag.String("segments", "", "write zone-mapped segment files into this directory instead of CSV to stdout")
	segmentRows := flag.Int("segment-rows", 8192, "rows per segment file (with -segments)")
	flag.Parse()

	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: *scale, Seed: *seed})
	var t *engine.Table
	switch *table {
	case "orders":
		t = orders
	case "lineitem":
		t = lineitem
	default:
		fmt.Fprintf(os.Stderr, "tpchgen: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *segments != "" {
		if err := writeSegments(*segments, t, *segmentRows); err != nil {
			fmt.Fprintln(os.Stderr, "tpchgen:", err)
			os.Exit(1)
		}
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	cols := t.Schema().Columns()
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, c.Name)
	}
	fmt.Fprintln(w)
	for row := 0; row < t.NumRows(); row++ {
		for i, c := range cols {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			v := t.Value(row, c.Name)
			switch {
			case v.Null:
				// NULL prints as an empty field.
			case c.Type == predicate.TypeDate:
				fmt.Fprint(w, predicate.FormatDate(v.Int))
			case c.Type.Integral():
				fmt.Fprint(w, v.Int)
			default:
				fmt.Fprint(w, v.Real)
			}
		}
		fmt.Fprintln(w)
	}
}

// writeSegments ingests t into dir as segment files of at most segRows
// rows each, then re-opens the directory as a sanity check that what was
// written reads back.
func writeSegments(dir string, t *engine.Table, segRows int) error {
	if segRows <= 0 {
		return fmt.Errorf("-segment-rows must be positive, got %d", segRows)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	st, err := storage.Open(dir, t.Name, t.Schema())
	if err != nil {
		return err
	}
	if st.NumRows() != 0 {
		return fmt.Errorf("directory %s already holds %d rows; refusing to mix datasets", dir, st.NumRows())
	}
	for lo := 0; lo < t.NumRows(); lo += segRows {
		hi := lo + segRows
		if hi > t.NumRows() {
			hi = t.NumRows()
		}
		if err := st.AppendRange(t, lo, hi); err != nil {
			return err
		}
	}
	reopened, err := storage.Open(dir, t.Name, t.Schema())
	if err != nil {
		return fmt.Errorf("re-opening written segments: %w", err)
	}
	if reopened.NumRows() != t.NumRows() {
		return fmt.Errorf("wrote %d rows but directory reads back %d", t.NumRows(), reopened.NumRows())
	}
	fmt.Fprintf(os.Stderr, "tpchgen: wrote %d rows in %d segments to %s\n",
		t.NumRows(), reopened.NumSegments(), dir)
	return nil
}
