// Command tpchgen generates the TPC-H-shaped orders and lineitem tables
// and writes them as CSV (for inspection or loading elsewhere).
//
// Usage:
//
//	tpchgen -scale 1 -table lineitem > lineitem.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sia/internal/engine"
	"sia/internal/predicate"
	"sia/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 1, "scale factor (x15k orders; 100 = TPC-H SF 1)")
	table := flag.String("table", "lineitem", "orders or lineitem")
	seed := flag.Int64("seed", 0, "generator seed (0 = default)")
	flag.Parse()

	orders, lineitem := tpch.Generate(tpch.Config{ScaleFactor: *scale, Seed: *seed})
	var t *engine.Table
	switch *table {
	case "orders":
		t = orders
	case "lineitem":
		t = lineitem
	default:
		fmt.Fprintf(os.Stderr, "tpchgen: unknown table %q\n", *table)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	cols := t.Schema().Columns()
	for i, c := range cols {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		fmt.Fprint(w, c.Name)
	}
	fmt.Fprintln(w)
	for row := 0; row < t.NumRows(); row++ {
		for i, c := range cols {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			v := t.Value(row, c.Name)
			switch {
			case v.Null:
				// NULL prints as an empty field.
			case c.Type == predicate.TypeDate:
				fmt.Fprint(w, predicate.FormatDate(v.Int))
			case c.Type.Integral():
				fmt.Fprint(w, v.Int)
			default:
				fmt.Fprint(w, v.Real)
			}
		}
		fmt.Fprintln(w)
	}
}
