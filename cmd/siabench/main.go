// Command siabench regenerates the paper's tables and figures (§6).
//
// Usage:
//
//	siabench -experiment table2 -queries 200
//	siabench -all -queries 40 -scale 1,10
//
// Experiments: table1, table2, table3, table4, fig6, fig7, fig8, fig9,
// motivating. Table 2/3 and Fig. 7/8 share one synthesis sweep; Table 4
// and Fig. 9 share one runtime run. Defaults are laptop-sized; the paper's
// scale is -queries 200 -scale 100,1000 (TPC-H SF 1 and 10).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sia/internal/experiments"
	"sia/internal/maxcompute"
)

func main() {
	exp := flag.String("experiment", "", "one of table1..table4, fig6..fig9, motivating")
	all := flag.Bool("all", false, "run every experiment")
	queries := flag.Int("queries", 40, "number of benchmark queries (paper: 200)")
	scale := flag.String("scale", "1,10", "comma-separated scale factors (x15k orders; paper SF1/SF10 = 100,1000)")
	population := flag.Int("population", 2000, "case-study population size (fig6)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	parallelism := flag.Int("parallelism", 0, "engine worker count for plan execution (0 = one per CPU; results are identical at any setting)")
	flag.Parse()

	var sfs []float64
	for _, s := range strings.Split(*scale, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal(fmt.Errorf("bad scale %q: %w", s, err))
		}
		sfs = append(sfs, f)
	}
	cfg := experiments.Config{Queries: *queries, Seed: *seed, ScaleFactors: sfs, Parallelism: *parallelism}

	run := map[string]bool{}
	if *all {
		for _, e := range []string{"table1", "table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "motivating"} {
			run[e] = true
		}
	} else if *exp != "" {
		for _, e := range strings.Split(*exp, ",") {
			run[strings.ToLower(strings.TrimSpace(e))] = true
		}
	} else {
		flag.Usage()
		os.Exit(2)
	}

	// Shared sweeps.
	var records []experiments.RunRecord
	needSweep := run["table2"] || run["table3"] || run["fig7"] || run["fig8"]
	if needSweep {
		start := time.Now()
		var err error
		records, err = experiments.SynthesisSweep(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "synthesis sweep: %d records in %v\n", len(records), time.Since(start).Round(time.Millisecond))
	}
	var runtimeRecords []experiments.RuntimeRecord
	if run["table4"] || run["fig9"] {
		start := time.Now()
		var err error
		runtimeRecords, err = experiments.Fig9(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "runtime experiment: %d records in %v\n", len(runtimeRecords), time.Since(start).Round(time.Millisecond))
	}

	section := func(title, body string) {
		fmt.Printf("=== %s ===\n%s\n", title, body)
	}
	if run["table1"] {
		section("Table 1: baseline configurations", experiments.RenderTable1(experiments.Table1()))
	}
	if run["table2"] {
		section("Table 2: efficacy", experiments.RenderTable2(experiments.Table2(records)))
	}
	if run["table3"] {
		section("Table 3: efficiency", experiments.RenderTable3(experiments.Table3(records)))
	}
	if run["fig7"] {
		section("Fig 7: learning-loop iterations", experiments.RenderFig7(experiments.Fig7(records)))
	}
	if run["fig8"] {
		section("Fig 8: sample distribution", experiments.RenderFig8(experiments.Fig8(records)))
	}
	if run["table4"] || run["fig9"] {
		body := experiments.RenderFig9(runtimeRecords, experiments.Summarize(runtimeRecords))
		section("Fig 9 / Table 4: runtime impact and selectivity", body)
	}
	if run["fig6"] {
		qs, err := maxcompute.Simulate(maxcompute.Config{N: *population})
		if err != nil {
			fatal(err)
		}
		section("Fig 6: MaxCompute case study (simulated population)", experiments.RenderFig6(qs))
	}
	if run["motivating"] {
		for _, sf := range sfs {
			m, err := experiments.Motivating(sf)
			if err != nil {
				fatal(err)
			}
			section(fmt.Sprintf("Motivating example (scale %g)", sf), experiments.RenderMotivating(m))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "siabench:", err)
	os.Exit(1)
}
