// Command siabench regenerates the paper's tables and figures (§6).
//
// Usage:
//
//	siabench -experiment table2 -queries 200
//	siabench -all -queries 40 -scale 1,10
//	siabench -experiment table3 -trace cegis.jsonl
//
// Experiments: table1, table2, table3, table4, fig6, fig7, fig8, fig9,
// fig9-disk, motivating, serve. Table 2/3 and Fig. 7/8 share one synthesis
// sweep; Table 4 and Fig. 9 share one runtime run. fig9-disk repeats the
// runtime comparison over disk-backed segment storage, where the rewrite's
// synthesized predicate additionally prunes segments via zone maps
// (-disk-out writes the BENCH_disk.json artifact). Defaults are
// laptop-sized; the paper's scale is -queries 200 -scale 100,1000 (TPC-H
// SF 1 and 10).
//
// -trace FILE records every CEGIS loop as JSONL spans (one line per
// sampling round, learning iteration, verification and outcome — the raw
// form of the paper's Table 3 breakdown; see internal/obs and
// docs/OBSERVABILITY.md for the schema). Tracing makes synthesis runs
// uncacheable, so Fig. 9's synthesis memoization is bypassed and traced
// runs are slower.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sia/internal/experiments"
	"sia/internal/maxcompute"
	"sia/internal/obs"
	"sia/internal/smt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "siabench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("experiment", "", "one of table1..table4, fig6..fig9, fig9-disk, motivating, serve")
	all := flag.Bool("all", false, "run every experiment")
	queries := flag.Int("queries", 40, "number of benchmark queries (paper: 200)")
	scale := flag.String("scale", "1,10", "comma-separated scale factors (x15k orders; paper SF1/SF10 = 100,1000)")
	population := flag.Int("population", 2000, "case-study population size (fig6)")
	seed := flag.Int64("seed", 0, "workload seed (0 = default)")
	parallelism := flag.Int("parallelism", 0, "engine worker count for plan execution (0 = one per CPU; results are identical at any setting)")
	trace := flag.String("trace", "", "write CEGIS trace spans to this file as JSONL (disables synthesis caching)")
	benchOut := flag.String("bench-out", "", "write a JSON snapshot of the process-wide SMT metrics to this file after the run (the BENCH_smt.json artifact)")
	serveOut := flag.String("serve-out", "", "with -experiment serve: write the serving-tier report to this file (the BENCH_serve.json artifact)")
	serveRequests := flag.Int("serve-requests", 1500, "serving experiment: stream length")
	serveTemplates := flag.Int("serve-templates", 60, "serving experiment: recurring-template pool size")
	serveCapacity := flag.Int("serve-capacity", 28, "serving experiment: per-replica cache capacity")
	serveConcurrency := flag.Int("serve-concurrency", 16, "serving experiment: client worker count")
	diskOut := flag.String("disk-out", "", "with -experiment fig9-disk: write the disk-storage report to this file (the BENCH_disk.json artifact)")
	segmentRows := flag.Int("segment-rows", 0, "disk experiment: rows per segment file (0 = default)")
	benchBaseline := flag.String("bench-baseline", "", "embed this previously written -bench-out file as the baseline and report speedups against it")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("opening cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("starting cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "siabench: cpuprofile:", cerr)
			}
		}()
	}

	var sfs []float64
	for _, s := range strings.Split(*scale, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad scale %q: %w", s, err)
		}
		sfs = append(sfs, f)
	}
	cfg := experiments.Config{Queries: *queries, Seed: *seed, ScaleFactors: sfs, Parallelism: *parallelism, SegmentRows: *segmentRows}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("opening trace file: %w", err)
		}
		tr := obs.NewTracer(f)
		cfg.Tracer = tr
		// Close flushes buffered spans and surfaces any write error; the
		// file itself must also reach disk before we report success.
		defer func() {
			if cerr := tr.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "siabench: trace:", cerr)
			}
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "siabench: trace:", cerr)
			}
		}()
	}

	run := map[string]bool{}
	if *all {
		for _, e := range []string{"table1", "table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "motivating"} {
			run[e] = true
		}
	} else if *exp != "" {
		for _, e := range strings.Split(*exp, ",") {
			run[strings.ToLower(strings.TrimSpace(e))] = true
		}
	} else {
		flag.Usage()
		return fmt.Errorf("no experiment selected")
	}

	// Shared sweeps.
	var records []experiments.RunRecord
	needSweep := run["table2"] || run["table3"] || run["fig7"] || run["fig8"]
	if needSweep {
		start := time.Now()
		var err error
		records, err = experiments.SynthesisSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "synthesis sweep: %d records in %v\n", len(records), time.Since(start).Round(time.Millisecond))
	}
	var runtimeRecords []experiments.RuntimeRecord
	if run["table4"] || run["fig9"] {
		start := time.Now()
		var err error
		runtimeRecords, err = experiments.Fig9(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "runtime experiment: %d records in %v\n", len(runtimeRecords), time.Since(start).Round(time.Millisecond))
	}

	section := func(title, body string) {
		fmt.Printf("=== %s ===\n%s\n", title, body)
	}
	if run["table1"] {
		section("Table 1: baseline configurations", experiments.RenderTable1(experiments.Table1()))
	}
	if run["table2"] {
		section("Table 2: efficacy", experiments.RenderTable2(experiments.Table2(records)))
	}
	if run["table3"] {
		section("Table 3: efficiency", experiments.RenderTable3(experiments.Table3(records)))
	}
	if run["fig7"] {
		section("Fig 7: learning-loop iterations", experiments.RenderFig7(experiments.Fig7(records)))
	}
	if run["fig8"] {
		section("Fig 8: sample distribution", experiments.RenderFig8(experiments.Fig8(records)))
	}
	if run["table4"] || run["fig9"] {
		body := experiments.RenderFig9(runtimeRecords, experiments.Summarize(runtimeRecords))
		section("Fig 9 / Table 4: runtime impact and selectivity", body)
	}
	if run["fig6"] {
		qs, err := maxcompute.Simulate(maxcompute.Config{N: *population})
		if err != nil {
			return err
		}
		section("Fig 6: MaxCompute case study (simulated population)", experiments.RenderFig6(qs))
	}
	if run["motivating"] {
		for _, sf := range sfs {
			m, err := experiments.Motivating(sf)
			if err != nil {
				return err
			}
			section(fmt.Sprintf("Motivating example (scale %g)", sf), experiments.RenderMotivating(m))
		}
	}
	if run["serve"] {
		start := time.Now()
		rep, err := experiments.ServeBench(experiments.ServeBenchConfig{
			Requests:      *serveRequests,
			Templates:     *serveTemplates,
			Seed:          *seed,
			Concurrency:   *serveConcurrency,
			CacheCapacity: *serveCapacity,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving experiment: %d requests x2 tiers in %v\n",
			*serveRequests, time.Since(start).Round(time.Millisecond))
		section("Serving tier: single replica vs sharded cluster", experiments.RenderServe(rep))
		if *serveOut != "" {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			out = append(out, '\n')
			if err := os.WriteFile(*serveOut, out, 0o644); err != nil {
				return fmt.Errorf("writing serve report: %w", err)
			}
			fmt.Fprintf(os.Stderr, "serve report: %s\n", *serveOut)
		}
	}
	if run["fig9-disk"] {
		start := time.Now()
		rep, err := experiments.Fig9Disk(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "disk experiment: %d records in %v\n",
			len(rep.Records), time.Since(start).Round(time.Millisecond))
		section("Fig 9 (disk): segment storage with zone-map pruning", experiments.RenderDisk(rep))
		if *diskOut != "" {
			out, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				return err
			}
			out = append(out, '\n')
			if err := os.WriteFile(*diskOut, out, 0o644); err != nil {
				return fmt.Errorf("writing disk report: %w", err)
			}
			fmt.Fprintf(os.Stderr, "disk report: %s\n", *diskOut)
		}
	}
	if *benchOut != "" {
		if err := writeBenchOut(*benchOut, *benchBaseline, cfg); err != nil {
			return err
		}
	}
	return nil
}

// benchReport is the BENCH_smt.json schema: the workload that was run, the
// SMT metric snapshot it produced, and (when -bench-baseline names an
// earlier report) that baseline plus per-kind mean-latency speedups.
type benchReport struct {
	Workload struct {
		Queries      int       `json:"queries"`
		Seed         int64     `json:"seed"`
		ScaleFactors []float64 `json:"scale_factors"`
	} `json:"workload"`
	SMT      smt.BenchSnapshot  `json:"smt"`
	Baseline *benchReport       `json:"baseline,omitempty"`
	Speedup  map[string]float64 `json:"mean_speedup,omitempty"`
}

// writeBenchOut snapshots the SMT metrics accumulated by this process's run
// and writes them as JSON. With a baseline file, the baseline is embedded
// and a mean-latency speedup (baseline mean / current mean) is reported per
// query kind so BENCH_smt.json carries the before/after comparison whole.
func writeBenchOut(path, baselinePath string, cfg experiments.Config) error {
	var rep benchReport
	rep.Workload.Queries = cfg.Queries
	rep.Workload.Seed = cfg.Seed
	rep.Workload.ScaleFactors = cfg.ScaleFactors
	rep.SMT = smt.Snapshot()
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("reading bench baseline: %w", err)
		}
		base := new(benchReport)
		if err := json.Unmarshal(raw, base); err != nil {
			return fmt.Errorf("parsing bench baseline %s: %w", baselinePath, err)
		}
		rep.Baseline = base
		rep.Speedup = map[string]float64{}
		for kind, cur := range rep.SMT.Query {
			b, ok := base.SMT.Query[kind]
			if !ok || cur.MeanSeconds == 0 || b.MeanSeconds == 0 {
				continue
			}
			rep.Speedup[kind] = b.MeanSeconds / cur.MeanSeconds
		}
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("writing bench report: %w", err)
	}
	fmt.Fprintf(os.Stderr, "bench report: %s\n", path)
	return nil
}
