package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewJSONHandler(io.Discard, nil))
}

// TestMetricsEndpoint is the acceptance check for the exposition surface:
// after one synthesis, /metrics must serve Prometheus text that includes
// the per-server HTTP and cache series alongside the process-wide
// synthesis and solver series fed by the instrumented internal packages.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	if resp, _, _ := postSynthesize(t, ts, quickstartBody); resp.StatusCode != http.StatusOK {
		t.Fatal("seed request failed")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		// Per-server registry.
		"sia_cache_hits_total",
		"sia_cache_misses_total 1",
		"sia_http_requests_total",
		`sia_http_request_seconds_bucket{path="/synthesize",le="+Inf"}`,
		"sia_process_uptime_seconds",
		// Process-wide Default registry, fed by internal packages.
		"sia_synthesis_duration_seconds_count",
		"sia_synthesis_runs_total",
		"sia_smt_sat_queries_total",
		"sia_smt_model_queries_total",
		"# TYPE sia_synthesis_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDraining checks shutdown semantics: once the drain flag is set, new
// synthesis work is refused with 503 and the liveness probe fails so load
// balancers stop routing here, while read-only endpoints keep serving.
func TestDraining(t *testing.T) {
	srv, ts := testServer(t)
	srv.draining.Store(true)

	resp, _, body := postSynthesize(t, ts, quickstartBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("synthesize while draining: status %d, body %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Fatalf("draining error body %q not structured", body)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d", hresp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics must keep serving during drain: status %d", mresp.StatusCode)
	}
}

// TestAccessLog drives one synthesis and one probe through the middleware
// and checks each produced exactly one structured line with the documented
// fields, including the cache outcome on synthesize responses.
func TestAccessLog(t *testing.T) {
	srv := newServer(64, 30*time.Second, time.Minute)
	var mu syncBuffer
	srv.logger = slog.New(slog.NewJSONHandler(&mu, nil))
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	if resp, _, _ := postSynthesize(t, ts, quickstartBody); resp.StatusCode != http.StatusOK {
		t.Fatal("seed request failed")
	}
	if resp, _, _ := postSynthesize(t, ts, quickstartBody); resp.StatusCode != http.StatusOK {
		t.Fatal("warm request failed")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()

	var lines []map[string]any
	sc := bufio.NewScanner(strings.NewReader(mu.String()))
	for sc.Scan() {
		var m map[string]any
		if uerr := json.Unmarshal(sc.Bytes(), &m); uerr != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", uerr, sc.Text())
		}
		if m["msg"] == "request" {
			lines = append(lines, m)
		}
	}
	if len(lines) != 3 {
		t.Fatalf("got %d access-log lines, want 3:\n%s", len(lines), mu.String())
	}

	cold, warm, probe := lines[0], lines[1], lines[2]
	for i, m := range []map[string]any{cold, warm} {
		if m["method"] != "POST" || m["path"] != "/synthesize" {
			t.Errorf("line %d: method/path = %v/%v", i, m["method"], m["path"])
		}
		if int(m["status"].(float64)) != http.StatusOK {
			t.Errorf("line %d: status = %v", i, m["status"])
		}
		if _, ok := m["duration"]; !ok {
			t.Errorf("line %d missing duration: %v", i, m)
		}
	}
	if cold["cache"] != "miss" {
		t.Errorf("cold request cache outcome = %v, want miss", cold["cache"])
	}
	if warm["cache"] != "hit" {
		t.Errorf("warm request cache outcome = %v, want hit", warm["cache"])
	}
	if probe["path"] != "/healthz" || probe["method"] != "GET" {
		t.Errorf("probe line = %v", probe)
	}
	if _, ok := probe["cache"]; ok {
		t.Errorf("healthz must not carry a cache outcome: %v", probe)
	}
}

// TestPprofGated: profiling routes exist only when opted in.
func TestPprofGated(t *testing.T) {
	srv, ts := testServer(t) // pprof off
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof served without -pprof: status %d", resp.StatusCode)
	}

	srv.pprof = true
	ts2 := httptest.NewServer(srv.handler())
	t.Cleanup(ts2.Close)
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with -pprof: status %d", resp2.StatusCode)
	}
}

func TestDebugVars(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars status %d", resp.StatusCode)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("debug/vars is not JSON: %v", err)
	}
}

// syncBuffer is a bytes.Buffer safe for the handler goroutines that slog
// writes from while the test goroutine reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
