package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(64, 30*time.Second, time.Minute)
	srv.logger = discardLogger()
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

const quickstartBody = `{
	"predicate": "l_shipdate - o_orderdate < 20 AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10 AND o_orderdate < DATE '1993-06-01'",
	"cols": ["l_commitdate", "l_shipdate"],
	"schema": [
		{"name": "l_shipdate", "type": "date"},
		{"name": "l_commitdate", "type": "date"},
		{"name": "o_orderdate", "type": "date"}
	]
}`

func postSynthesize(t *testing.T, ts *httptest.Server, body string) (*http.Response, synthesizeResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/synthesize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out synthesizeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return resp, out, buf.String()
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestSynthesizeAndCacheHit(t *testing.T) {
	srv, ts := testServer(t)

	resp, cold, _ := postSynthesize(t, ts, quickstartBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", resp.StatusCode)
	}
	if !cold.Valid || cold.Predicate == "" || cold.Cached {
		t.Fatalf("cold response %+v", cold)
	}

	resp, warm, _ := postSynthesize(t, ts, quickstartBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	if !warm.Cached {
		t.Fatalf("repeat request not served from cache: %+v", warm)
	}
	if warm.Predicate != cold.Predicate || warm.Iterations != cold.Iterations {
		t.Fatalf("cached response differs from cold run:\ncold %+v\nwarm %+v", cold, warm)
	}

	cs := srv.synth.Stats()
	if cs.Misses != 1 || cs.Hits != 1 {
		t.Fatalf("cache stats %+v, want 1 miss 1 hit", cs)
	}
}

// TestConcurrentRequestsCoalesce is the acceptance check: 32 concurrent
// identical requests execute exactly one CEGIS loop, asserted via the
// miss/coalesce counters.
func TestConcurrentRequestsCoalesce(t *testing.T) {
	srv, ts := testServer(t)
	const n = 32
	var wg sync.WaitGroup
	preds := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/synthesize", "application/json", strings.NewReader(quickstartBody))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out synthesizeResponse
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			preds[i] = out.Predicate
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if preds[i] != preds[0] {
			t.Fatalf("request %d got a different predicate", i)
		}
	}
	cs := srv.synth.Stats()
	if cs.Misses != 1 {
		t.Fatalf("%d synthesis loops ran for %d identical requests (stats %+v)", cs.Misses, n, cs)
	}
	if cs.Hits+cs.Coalesced != n-1 {
		t.Fatalf("hits+coalesced = %d, want %d (stats %+v)", cs.Hits+cs.Coalesced, n-1, cs)
	}
	if cs.InFlight != 0 {
		t.Fatalf("inflight = %d after all requests finished", cs.InFlight)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{`},
		{"unknown field", `{"predicte": "a < 1"}`},
		{"empty schema", `{"predicate": "a < 1", "cols": ["a"], "schema": []}`},
		{"bad type", `{"predicate": "a < 1", "cols": ["a"], "schema": [{"name": "a", "type": "text"}]}`},
		{"parse error", `{"predicate": "a <", "cols": ["a"], "schema": [{"name": "a", "type": "int"}]}`},
		{"unknown column", `{"predicate": "a < 1 AND b < 2", "cols": ["c"], "schema": [{"name": "a", "type": "int"}, {"name": "b", "type": "int"}]}`},
		{"negative option", `{"predicate": "a < 1", "cols": ["a"], "schema": [{"name": "a", "type": "int"}], "options": {"max_iterations": -1}}`},
		{"negative timeout", `{"predicate": "a < 1", "cols": ["a"], "schema": [{"name": "a", "type": "int"}], "timeout_ms": -5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, body := postSynthesize(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, body %s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q not structured", body)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/synthesize")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestRequestDeadline(t *testing.T) {
	srv := newServer(64, 30*time.Second, time.Minute)
	srv.logger = discardLogger()
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)

	// A 1 ms budget cannot fit a synthesis run; the handler must answer
	// 504 with an error body rather than hanging. The oversized sampling
	// options keep the run well past any plausible timer latency, so the
	// deadline cannot lose the race to a fast synthesis.
	body := strings.Replace(quickstartBody, "\n}",
		",\n\t\"timeout_ms\": 1,\n\t\"options\": {\"initial_true\": 150, \"initial_false\": 150, \"samples_per_iteration\": 60}\n}", 1)
	start := time.Now()
	resp, _, raw := postSynthesize(t, ts, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timed-out request took %v", elapsed)
	}
	var e errorResponse
	if err := json.Unmarshal([]byte(raw), &e); err != nil || e.Error == "" {
		t.Fatalf("error body %q not structured", raw)
	}
}

func TestMaxTimeoutCap(t *testing.T) {
	// A client asking for an hour is capped to the server's max: the
	// context deadline must be at most maxTimeout from now. Exercised
	// indirectly: with maxTimeout of 1 ms even a huge timeout_ms request
	// times out.
	srv := newServer(64, time.Millisecond, time.Millisecond)
	srv.logger = discardLogger()
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	body := strings.Replace(quickstartBody, "\n}",
		",\n\t\"timeout_ms\": 3600000,\n\t\"options\": {\"initial_true\": 150, \"initial_false\": 150, \"samples_per_iteration\": 60}\n}", 1)
	resp, _, raw := postSynthesize(t, ts, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
}

func TestStats(t *testing.T) {
	_, ts := testServer(t)
	if resp, _, _ := postSynthesize(t, ts, quickstartBody); resp.StatusCode != http.StatusOK {
		t.Fatal("seed request failed")
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.UptimeSeconds < 0 {
		t.Fatalf("uptime %v", st.UptimeSeconds)
	}
}
