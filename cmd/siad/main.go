// Command siad serves predicate synthesis over HTTP: a long-lived process
// that amortizes Sia's synthesis cost across recurring queries (§6.2 of the
// paper argues reuse is the common case) through an in-memory result cache
// with request coalescing.
//
// Endpoints:
//
//	POST /synthesize  — synthesize a reduction (JSON in, JSON out)
//	GET  /healthz     — liveness probe
//	GET  /stats       — uptime, request counts, cache counters
//
// A request names its schema inline, so one daemon serves any catalog:
//
//	{
//	  "predicate": "a - b < 20 AND b < 0",
//	  "cols": ["a"],
//	  "schema": [
//	    {"name": "a", "type": "int"},
//	    {"name": "b", "type": "int", "nullable": true}
//	  ],
//	  "timeout_ms": 5000
//	}
//
// Each request runs under a deadline: timeout_ms when given (capped by
// -max-timeout), -default-timeout otherwise. A request that exceeds its
// deadline gets 504 with an error naming the timeout; malformed input gets
// 400; identical concurrent requests share a single synthesis run and
// repeated ones are answered from the cache.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/predicate"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	capacity := flag.Int("cache", cache.DefaultCapacity, "result-cache capacity (entries)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the client sets none")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper bound on client-requested deadlines")
	flag.Parse()

	srv := newServer(*capacity, *defaultTimeout, *maxTimeout)
	log.Printf("siad listening on %s (cache capacity %d)", *addr, *capacity)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, "siad:", err)
		os.Exit(1)
	}
}

// server is the daemon's state: one shared synthesis cache plus counters.
// It is separated from main so the handler tests drive it via httptest.
type server struct {
	synth          *cache.Synthesizer
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	start          time.Time
	requests       atomic.Uint64
	failures       atomic.Uint64
}

func newServer(capacity int, defaultTimeout, maxTimeout time.Duration) *server {
	return &server{
		synth:          cache.NewSynthesizer(capacity),
		defaultTimeout: defaultTimeout,
		maxTimeout:     maxTimeout,
		start:          time.Now(),
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleSynthesize)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// synthesizeRequest is the wire form of one synthesis call. Durations are
// carried as integral milliseconds, matching how query optimizers configure
// solver timeouts.
type synthesizeRequest struct {
	Predicate string          `json:"predicate"`
	Cols      []string        `json:"cols"`
	Schema    []schemaColumn  `json:"schema"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Options   *requestOptions `json:"options,omitempty"`
}

type schemaColumn struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable,omitempty"`
}

type requestOptions struct {
	MaxIterations       int   `json:"max_iterations,omitempty"`
	InitialTrue         int   `json:"initial_true,omitempty"`
	InitialFalse        int   `json:"initial_false,omitempty"`
	SamplesPerIteration int   `json:"samples_per_iteration,omitempty"`
	MaxDenominator      int64 `json:"max_denominator,omitempty"`
	NonZeroSamples      bool  `json:"non_zero_samples,omitempty"`
	SolverTimeoutMS     int64 `json:"solver_timeout_ms,omitempty"`
	TimeoutMS           int64 `json:"timeout_ms,omitempty"`
}

type synthesizeResponse struct {
	// Predicate is the synthesized reduction in SQL syntax, or "" when
	// only the trivial TRUE predicate is valid.
	Predicate    string `json:"predicate"`
	Valid        bool   `json:"valid"`
	Optimal      bool   `json:"optimal"`
	Iterations   int    `json:"iterations"`
	TrueSamples  int    `json:"true_samples"`
	FalseSamples int    `json:"false_samples"`
	GaveUp       string `json:"gave_up,omitempty"`
	// Cached reports whether the response was served without running a
	// synthesis loop in this request (a cache hit or a coalesced join).
	Cached    bool  `json:"cached"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req synthesizeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	schema, err := buildSchema(req.Schema)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	pred, err := predicate.Parse(req.Predicate, schema)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing predicate: %w", err))
		return
	}
	opts, err := buildOptions(req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
	} else if req.TimeoutMS < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("timeout_ms must be positive"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, cached, err := s.synth.Synthesize(ctx, pred, req.Cols, schema, opts)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrInvalidOptions):
			s.fail(w, http.StatusBadRequest, err)
		case errors.Is(err, core.ErrTimeout):
			s.fail(w, http.StatusGatewayTimeout, err)
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}

	resp := synthesizeResponse{
		Valid:        res.Valid,
		Optimal:      res.Optimal,
		Iterations:   res.Iterations,
		TrueSamples:  res.TrueSamples,
		FalseSamples: res.FalseSamples,
		GaveUp:       string(res.GaveUp),
		Cached:       cached,
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
	if res.Predicate != nil {
		resp.Predicate = res.Predicate.String()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

type statsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      uint64      `json:"requests"`
	Failures      uint64      `json:"failures"`
	Cache         cache.Stats `json:"cache"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Load(),
		Failures:      s.failures.Load(),
		Cache:         s.synth.Stats(),
	})
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.failures.Add(1)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func buildSchema(cols []schemaColumn) (*predicate.Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema must declare at least one column")
	}
	out := make([]predicate.Column, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema column %d has no name", i)
		}
		var t predicate.Type
		switch strings.ToLower(c.Type) {
		case "int", "integer":
			t = predicate.TypeInteger
		case "double", "float":
			t = predicate.TypeDouble
		case "date":
			t = predicate.TypeDate
		case "timestamp":
			t = predicate.TypeTimestamp
		default:
			return nil, fmt.Errorf("column %q: unknown type %q (want int, double, date or timestamp)", c.Name, c.Type)
		}
		out[i] = predicate.Column{Name: c.Name, Type: t, NotNull: !c.Nullable}
	}
	return predicate.NewSchema(out...), nil
}

func buildOptions(o *requestOptions) (core.Options, error) {
	if o == nil {
		return core.Options{}, nil
	}
	opts := core.Options{
		MaxIterations:       o.MaxIterations,
		InitialTrue:         o.InitialTrue,
		InitialFalse:        o.InitialFalse,
		SamplesPerIteration: o.SamplesPerIteration,
		MaxDenominator:      o.MaxDenominator,
		NonZeroSamples:      o.NonZeroSamples,
		SolverTimeout:       time.Duration(o.SolverTimeoutMS) * time.Millisecond,
		Timeout:             time.Duration(o.TimeoutMS) * time.Millisecond,
	}
	if err := opts.Validate(); err != nil {
		return core.Options{}, err
	}
	return opts, nil
}
