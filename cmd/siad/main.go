// Command siad serves predicate synthesis over HTTP: a long-lived process
// that amortizes Sia's synthesis cost across recurring queries (§6.2 of the
// paper argues reuse is the common case). The serving logic lives in
// internal/serve; this command is flag parsing, signal handling and process
// lifecycle.
//
// Endpoints (see docs/API.md):
//
//	POST /v1/synthesize — synthesize a reduction (JSON in, JSON out)
//	POST /v1/batch      — several requests in one call, answered per item
//	GET  /v1/stats      — uptime, request counts, cache + serving counters
//	GET  /healthz       — liveness probe (503 while draining)
//	GET  /metrics       — Prometheus text exposition
//	GET  /debug/vars    — expvar JSON (includes the sia_metrics snapshot)
//	GET  /debug/pprof/  — run-time profiles (only with -pprof)
//	POST /synthesize    — deprecated alias of /v1/synthesize
//	GET  /stats         — deprecated alias of /v1/stats
//
// Replicas: -peers lists the full cluster membership and -self this
// replica's own advertised address; the synthesis cache is then partitioned
// across the cluster by consistent hashing, with misses on peer-owned keys
// forwarded single-hop to their owner. -snapshot persists the cache across
// restarts; -batch-tick groups near-identical requests into shared CEGIS
// runs; -tenant-rate/-tenant-burst/-max-inflight shed load before it
// queues.
//
// The process shuts down gracefully: SIGINT or SIGTERM stops accepting new
// synthesis work (503), fails the liveness probe so load balancers drain
// the instance, waits up to -drain-timeout for in-flight requests, writes a
// final cache snapshot (when -snapshot is set) and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sia/internal/cache"
	"sia/internal/obs"
	"sia/internal/serve"
	"sia/internal/serve/api"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:8080", "listen address")
	capacity := flag.Int("cache", cache.DefaultCapacity, "result-cache capacity (entries)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the client sets none")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper bound on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body cap in bytes (413 past it)")

	self := flag.String("self", "", "this replica's advertised address (required with -peers)")
	peers := flag.String("peers", "", "comma-separated cluster membership, including -self (empty = unsharded)")
	batchTick := flag.Duration("batch-tick", 0, "window for grouping near-identical requests into one CEGIS run (0 = disabled)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admitted requests/second (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 8, "per-tenant token-bucket size")
	maxInflight := flag.Int("max-inflight", 0, "concurrent synthesis cap; misses past it are shed with 429 (0 = unlimited)")
	snapshot := flag.String("snapshot", "", "cache snapshot path: restored at boot, written periodically and on drain")
	snapshotInterval := flag.Duration("snapshot-interval", time.Minute, "how often the snapshot is rewritten (with -snapshot)")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv, err := serve.New(serve.Config{
		Capacity:         *capacity,
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		MaxBodyBytes:     *maxBody,
		Logger:           logger,
		Pprof:            *enablePprof,
		Self:             *self,
		Peers:            splitPeers(*peers),
		BatchTick:        *batchTick,
		TenantRate:       *tenantRate,
		TenantBurst:      *tenantBurst,
		MaxInflight:      *maxInflight,
		SnapshotPath:     *snapshot,
		SnapshotInterval: *snapshotInterval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer srv.Close()
	obs.PublishExpvar()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("siad listening", "addr", *addr, "cache_capacity", *capacity,
			"pprof", *enablePprof, "self", *self, "peers", *peers,
			"batch_tick", batchTick.String(), "snapshot", *snapshot)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("siad server failed", "err", err.Error())
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Drain: refuse new synthesis work, fail the liveness probe, wait for
	// in-flight requests up to the drain budget, then persist the cache so
	// the restarted replica warms instantly.
	stop()
	srv.StartDrain()
	logger.Info("siad draining", "drain_timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if n, err := srv.WriteSnapshot(); err != nil {
		logger.Error("final snapshot failed", "err", err.Error())
	} else if *snapshot != "" {
		logger.Info("final snapshot written", "entries", n)
	}
	if shutdownErr != nil {
		logger.Error("siad shutdown incomplete", "err", shutdownErr.Error())
		return 1
	}
	logger.Info("siad stopped")
	return 0
}

func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// --- handler-test compatibility ------------------------------------------
//
// The original siad kept its server state in this package; the serving
// logic now lives in internal/serve, but the handler tests (and anything
// else that grew against the old surface) still construct a server here and
// poke its fields. This thin shim preserves that surface: newServer mirrors
// the old constructor, and handler() materializes an internal/serve server
// over the shared synthesizer, logger, drain flag and pprof setting at call
// time — matching the old semantics where field writes between newServer
// and handler() took effect.

type server struct {
	synth          *cache.Synthesizer
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	logger         *slog.Logger
	pprof          bool
	draining       atomic.Bool
}

// Wire types moved to internal/serve/api; the old names remain as aliases.
type (
	synthesizeRequest  = api.SynthesizeRequest
	synthesizeResponse = api.SynthesizeResponse
	statsResponse      = api.StatsResponse
	errorResponse      = api.ErrorResponse
)

func newServer(capacity int, defaultTimeout, maxTimeout time.Duration) *server {
	return &server{
		synth:          cache.NewSynthesizer(capacity),
		defaultTimeout: defaultTimeout,
		maxTimeout:     maxTimeout,
		logger:         slog.New(slog.NewJSONHandler(os.Stderr, nil)),
	}
}

func (s *server) handler() http.Handler {
	srv, err := serve.New(serve.Config{
		DefaultTimeout: s.defaultTimeout,
		MaxTimeout:     s.maxTimeout,
		Logger:         s.logger,
		Pprof:          s.pprof,
		Drain:          &s.draining,
		Synth:          s.synth,
	})
	if err != nil {
		// A config with no peers and no snapshot cannot fail to build.
		panic("siad: " + err.Error())
	}
	return srv.Handler()
}
