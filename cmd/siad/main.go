// Command siad serves predicate synthesis over HTTP: a long-lived process
// that amortizes Sia's synthesis cost across recurring queries (§6.2 of the
// paper argues reuse is the common case) through an in-memory result cache
// with request coalescing.
//
// Endpoints:
//
//	POST /synthesize   — synthesize a reduction (JSON in, JSON out)
//	GET  /healthz      — liveness probe (503 while draining)
//	GET  /stats        — uptime, request counts, cache counters
//	GET  /metrics      — Prometheus text exposition (server + process metrics)
//	GET  /debug/vars   — expvar JSON (includes the sia_metrics snapshot)
//	GET  /debug/pprof/ — run-time profiles (only with -pprof)
//
// A request names its schema inline, so one daemon serves any catalog:
//
//	{
//	  "predicate": "a - b < 20 AND b < 0",
//	  "cols": ["a"],
//	  "schema": [
//	    {"name": "a", "type": "int"},
//	    {"name": "b", "type": "int", "nullable": true}
//	  ],
//	  "timeout_ms": 5000
//	}
//
// Each request runs under a deadline: timeout_ms when given (capped by
// -max-timeout), -default-timeout otherwise. A request that exceeds its
// deadline gets 504 with an error naming the timeout; malformed input gets
// 400; identical concurrent requests share a single synthesis run and
// repeated ones are answered from the cache.
//
// The process shuts down gracefully: SIGINT or SIGTERM stops accepting new
// synthesis work (503), fails the liveness probe so load balancers drain
// the instance, and waits up to -drain-timeout for in-flight requests
// before exiting 0. Every request is access-logged as one structured JSON
// line on stderr.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"sia/internal/cache"
	"sia/internal/core"
	"sia/internal/obs"
	"sia/internal/predicate"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "localhost:8080", "listen address")
	capacity := flag.Int("cache", cache.DefaultCapacity, "result-cache capacity (entries)")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the client sets none")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "upper bound on client-requested deadlines")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := newServer(*capacity, *defaultTimeout, *maxTimeout)
	srv.logger = logger
	srv.pprof = *enablePprof
	obs.PublishExpvar()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("siad listening", "addr", *addr, "cache_capacity", *capacity, "pprof", *enablePprof)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("siad server failed", "err", err.Error())
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	// Drain: refuse new synthesis work, fail the liveness probe, then wait
	// for in-flight requests up to the drain budget.
	stop()
	srv.draining.Store(true)
	logger.Info("siad draining", "drain_timeout", drainTimeout.String())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Error("siad shutdown incomplete", "err", err.Error())
		return 1
	}
	logger.Info("siad stopped")
	return 0
}

// server is the daemon's state: one shared synthesis cache, a per-server
// metrics registry, and the drain flag. It is separated from main so the
// handler tests drive it via httptest.
type server struct {
	synth          *cache.Synthesizer
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	start          time.Time
	logger         *slog.Logger
	pprof          bool
	draining       atomic.Bool

	// reg holds this server's own metrics (request counters, latency
	// histograms, the cache's counters). /metrics serves it merged with
	// obs.Default(), which the instrumented internal packages feed.
	reg      *obs.Registry
	requests *obs.Counter
	failures *obs.Counter
	latency  map[string]*obs.Histogram
}

// Endpoints with their own latency series; anything else lands in "other"
// so label cardinality stays bounded.
var knownPaths = []string{"/synthesize", "/healthz", "/stats", "/metrics", "/debug/vars", "other"}

func newServer(capacity int, defaultTimeout, maxTimeout time.Duration) *server {
	reg := obs.NewRegistry()
	s := &server{
		synth:          cache.NewSynthesizer(capacity),
		defaultTimeout: defaultTimeout,
		maxTimeout:     maxTimeout,
		start:          time.Now(),
		logger:         slog.New(slog.NewJSONHandler(os.Stderr, nil)),
		reg:            reg,
		requests:       reg.Counter("sia_http_requests_total", "HTTP requests served."),
		failures:       reg.Counter("sia_http_failures_total", "HTTP requests answered with status >= 400."),
		latency:        map[string]*obs.Histogram{},
	}
	for _, p := range knownPaths {
		s.latency[p] = reg.Histogram("sia_http_request_seconds",
			"HTTP request latency by endpoint.", obs.DurationBuckets(),
			obs.Label{Key: "path", Value: p})
	}
	// A fresh registry cannot already hold these names; a failure here is a
	// programmer error, not a runtime condition.
	if err := s.synth.RegisterMetrics(reg); err != nil {
		panic("siad: " + err.Error())
	}
	if err := reg.GaugeFunc("sia_process_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() }); err != nil {
		panic("siad: " + err.Error())
	}
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", s.handleSynthesize)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/debug/vars", expvar.Handler())
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// cacheOutcomeHeader carries the cache outcome ("hit" or "miss") from the
// synthesize handler to the access-log middleware. It travels as a real
// response header, so clients can observe it too.
const cacheOutcomeHeader = "X-Sia-Cache"

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with request counting, per-endpoint latency
// histograms, and one structured access-log line per request. Counters are
// bumped after the handler returns, so a /stats request reports the state
// before itself.
func (s *server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)

		path := r.URL.Path
		if _, ok := s.latency[path]; !ok {
			path = "other"
		}
		s.requests.Inc()
		if rec.status >= 400 {
			s.failures.Inc()
		}
		s.latency[path].Observe(elapsed.Seconds())

		attrs := []slog.Attr{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Duration("duration", elapsed),
		}
		if outcome := rec.Header().Get(cacheOutcomeHeader); outcome != "" {
			attrs = append(attrs, slog.String("cache", outcome))
		}
		s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
	})
}

// synthesizeRequest is the wire form of one synthesis call. Durations are
// carried as integral milliseconds, matching how query optimizers configure
// solver timeouts.
type synthesizeRequest struct {
	Predicate string          `json:"predicate"`
	Cols      []string        `json:"cols"`
	Schema    []schemaColumn  `json:"schema"`
	TimeoutMS int64           `json:"timeout_ms,omitempty"`
	Options   *requestOptions `json:"options,omitempty"`
}

type schemaColumn struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	Nullable bool   `json:"nullable,omitempty"`
}

type requestOptions struct {
	MaxIterations       int   `json:"max_iterations,omitempty"`
	InitialTrue         int   `json:"initial_true,omitempty"`
	InitialFalse        int   `json:"initial_false,omitempty"`
	SamplesPerIteration int   `json:"samples_per_iteration,omitempty"`
	MaxDenominator      int64 `json:"max_denominator,omitempty"`
	NonZeroSamples      bool  `json:"non_zero_samples,omitempty"`
	SolverTimeoutMS     int64 `json:"solver_timeout_ms,omitempty"`
	TimeoutMS           int64 `json:"timeout_ms,omitempty"`
}

type synthesizeResponse struct {
	// Predicate is the synthesized reduction in SQL syntax, or "" when
	// only the trivial TRUE predicate is valid.
	Predicate    string `json:"predicate"`
	Valid        bool   `json:"valid"`
	Optimal      bool   `json:"optimal"`
	Iterations   int    `json:"iterations"`
	TrueSamples  int    `json:"true_samples"`
	FalseSamples int    `json:"false_samples"`
	GaveUp       string `json:"gave_up,omitempty"`
	// Cached reports whether the response was served without running a
	// synthesis loop in this request (a cache hit or a coalesced join).
	Cached    bool  `json:"cached"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("server is draining"))
		return
	}
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req synthesizeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}

	schema, err := buildSchema(req.Schema)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	pred, err := predicate.Parse(req.Predicate, schema)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing predicate: %w", err))
		return
	}
	opts, err := buildOptions(req.Options)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
	} else if req.TimeoutMS < 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("timeout_ms must be positive"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, cached, err := s.synth.Synthesize(ctx, pred, req.Cols, schema, opts)
	if err != nil {
		switch {
		case errors.Is(err, core.ErrInvalidOptions):
			s.fail(w, http.StatusBadRequest, err)
		case errors.Is(err, core.ErrTimeout):
			s.fail(w, http.StatusGatewayTimeout, err)
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}

	resp := synthesizeResponse{
		Valid:        res.Valid,
		Optimal:      res.Optimal,
		Iterations:   res.Iterations,
		TrueSamples:  res.TrueSamples,
		FalseSamples: res.FalseSamples,
		GaveUp:       string(res.GaveUp),
		Cached:       cached,
		ElapsedMS:    time.Since(start).Milliseconds(),
	}
	if res.Predicate != nil {
		resp.Predicate = res.Predicate.String()
	}
	if cached {
		w.Header().Set(cacheOutcomeHeader, "hit")
	} else {
		w.Header().Set(cacheOutcomeHeader, "miss")
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics serves the Prometheus exposition: this server's registry
// (request counters, latency, cache) merged with the process-wide Default
// registry (synthesis, solver, engine).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, s.reg, obs.Default())
}

type statsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Requests      uint64      `json:"requests"`
	Failures      uint64      `json:"failures"`
	Cache         cache.Stats `json:"cache"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests.Value(),
		Failures:      s.failures.Value(),
		Cache:         s.synth.Stats(),
	})
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func buildSchema(cols []schemaColumn) (*predicate.Schema, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("schema must declare at least one column")
	}
	out := make([]predicate.Column, len(cols))
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema column %d has no name", i)
		}
		var t predicate.Type
		switch strings.ToLower(c.Type) {
		case "int", "integer":
			t = predicate.TypeInteger
		case "double", "float":
			t = predicate.TypeDouble
		case "date":
			t = predicate.TypeDate
		case "timestamp":
			t = predicate.TypeTimestamp
		default:
			return nil, fmt.Errorf("column %q: unknown type %q (want int, double, date or timestamp)", c.Name, c.Type)
		}
		out[i] = predicate.Column{Name: c.Name, Type: t, NotNull: !c.Nullable}
	}
	return predicate.NewSchema(out...), nil
}

func buildOptions(o *requestOptions) (core.Options, error) {
	if o == nil {
		return core.Options{}, nil
	}
	opts := core.Options{
		MaxIterations:       o.MaxIterations,
		InitialTrue:         o.InitialTrue,
		InitialFalse:        o.InitialFalse,
		SamplesPerIteration: o.SamplesPerIteration,
		MaxDenominator:      o.MaxDenominator,
		NonZeroSamples:      o.NonZeroSamples,
		SolverTimeout:       time.Duration(o.SolverTimeoutMS) * time.Millisecond,
		Timeout:             time.Duration(o.TimeoutMS) * time.Millisecond,
	}
	if err := opts.Validate(); err != nil {
		return core.Options{}, err
	}
	return opts, nil
}
