// Command sialint runs Sia's project-specific static-analysis suite over
// the module's packages. It is stdlib-only (go/ast, go/parser, go/types)
// and enforces invariants the compiler cannot:
//
//	exhaustive-switch  type switches over predicate.Expr, predicate.Predicate
//	                   and smt.Formula cover every AST node or declare a default
//	tribool-misuse     three-valued logic is never silently collapsed to bool
//	no-panic           library panics are package-prefixed dispatch panics only
//	hygiene            no copied sync types or defers inside hot loops
//	ctx-first          exported functions taking a context.Context take it first
//	cancel-poll        while-style loops in solver/engine code poll cancellation
//	                   on every cycle (path-sensitive, over the CFG)
//	err-wrap           sentinel errors are matched with errors.Is and wrapped
//	                   with %w across exported boundaries
//	lock-balance       every Lock is released on every path to return; no
//	                   double-lock (forward dataflow)
//	wg-balance         wg.Add precedes the go statement, never inside it
//	alloc-budget       code reachable from // sia:hotpath entries does not
//	                   allocate unless the site carries an // alloc: reason
//	                   (interprocedural, over the call graph)
//	memo-safe          // sia:memoize functions are memoization-pure: no
//	                   global writes, argument mutation, nondeterminism, or
//	                   map-iteration-order leaks (interprocedural)
//	goroutine-leak     every go statement's body reaches termination on all
//	                   CFG paths: loops poll ctx/done or a channel, or carry
//	                   a // goroutine: reason (interprocedural)
//	atomic-mix         no variable is accessed both via sync/atomic and by
//	                   plain read/write (whole-program field summaries)
//	chan-misuse        channel-state dataflow: send-after-close, double
//	                   close, nil-channel ops, close-by-non-owner, select
//	                   loops spinning on a closed channel
//	taint-bound        request-derived values are clamped/validated before
//	                   becoming timeouts, budgets, loop bounds, allocation
//	                   sizes, or Options fields (// taint: escapes)
//
// Usage:
//
//	sialint [flags] [packages]
//
// where packages are Go package patterns relative to the working directory
// ("./...", "./internal/...", "./cmd/sia"). With no arguments, ./... is
// assumed. Findings print as file:line:col: [analyzer] message — or as a
// JSON document (-json) or SARIF 2.1.0 log (-sarif) for machine consumers.
// The exit status is 1 when any finding is reported and 2 on a load or
// usage error. -memo-report <file> additionally writes the machine-readable
// memo-safe certification report consumed by the QE subproblem cache.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sia/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status surfaced for testing.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sialint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list     = fs.Bool("list", false, "list the registered analyzers and exit")
		enable   = fs.String("enable", "", "comma-separated analyzer names to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated analyzer names to skip")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON document on stdout")
		sarifOut = fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
		parallel = fs.Int("parallel", 0, "package-level worker count (0 = GOMAXPROCS, 1 = serial)")
		memoOut  = fs.String("memo-report", "", "write the memo-safe certification report (JSON) to this file")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sialint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := analysis.DefaultConfig()
	analyzers := analysis.Analyzers(cfg)
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintf(stderr, "sialint: -json and -sarif are mutually exclusive\n")
		return 2
	}
	analyzers, err := selectAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		fmt.Fprintf(stderr, "sialint: %v\n", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(stderr, "sialint: %v\n", err)
		return 2
	}

	var findings []analysis.Finding
	if *parallel == 1 {
		findings = analysis.Run(pkgs, analyzers, cfg)
	} else {
		findings = analysis.RunParallel(pkgs, analyzers, cfg, *parallel)
	}

	cwd, _ := os.Getwd()
	if *memoOut != "" {
		f, err := os.Create(*memoOut)
		if err != nil {
			fmt.Fprintf(stderr, "sialint: %v\n", err)
			return 2
		}
		werr := analysis.WriteMemoReport(f, pkgs, cwd)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "sialint: memo-report: %v\n", werr)
			return 2
		}
	}
	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(stdout, findings, cwd); err != nil {
			fmt.Fprintf(stderr, "sialint: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(stdout, findings, analyzers, cwd); err != nil {
			fmt.Fprintf(stderr, "sialint: %v\n", err)
			return 2
		}
	default:
		for _, f := range findings {
			pos := f.Pos
			if cwd != "" {
				if rel, rerr := filepath.Rel(cwd, pos.Filename); rerr == nil && !filepath.IsAbs(rel) {
					pos.Filename = rel
				}
			}
			fmt.Fprintf(stdout, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sialint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers applies the -enable / -disable flags. Unknown names are an
// error in either flag — a typo silently running nothing would defeat CI.
func selectAnalyzers(all []*analysis.Analyzer, enable, disable string) ([]*analysis.Analyzer, error) {
	known := map[string]bool{}
	for _, a := range all {
		known[a.Name] = true
	}
	parse := func(flagName, val string) (map[string]bool, error) {
		if val == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(val, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	enabled, err := parse("enable", enable)
	if err != nil {
		return nil, err
	}
	disabled, err := parse("disable", disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if enabled != nil && !enabled[a.Name] {
			continue
		}
		if disabled[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
