// Command sialint runs Sia's project-specific static-analysis suite over
// the module's packages. It is stdlib-only (go/ast, go/parser, go/types)
// and enforces invariants the compiler cannot:
//
//	exhaustive-switch  type switches over predicate.Expr, predicate.Predicate
//	                   and smt.Formula cover every AST node or declare a default
//	tribool-misuse     three-valued logic is never silently collapsed to bool
//	no-panic           library panics are package-prefixed dispatch panics only
//	hygiene            no copied sync types or defers inside hot loops
//	ctx-first          exported functions taking a context.Context take it first
//
// Usage:
//
//	sialint [packages]
//
// where packages are Go package patterns relative to the working directory
// ("./...", "./internal/...", "./cmd/sia"). With no arguments, ./... is
// assumed. Findings print as file:line:col: [analyzer] message; the exit
// status is 1 when any finding is reported and 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sia/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sialint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	cfg := analysis.DefaultConfig()
	analyzers := analysis.Analyzers(cfg)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sialint: %v\n", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analyzers, cfg)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		pos := f.Pos
		if cwd != "" {
			if rel, rerr := filepath.Rel(cwd, pos.Filename); rerr == nil && !filepath.IsAbs(rel) {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sialint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
