package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListIncludesNewAnalyzers(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errs.String())
	}
	for _, name := range []string{"cancel-poll", "err-wrap", "lock-balance", "wg-balance", "alloc-budget", "memo-safe"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestEnableUnknownAnalyzer(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-enable", "no-such-check"}, &out, &errs); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "unknown analyzer") {
		t.Errorf("stderr: %s", errs.String())
	}
}

func TestJSONAndSARIFExclusive(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-json", "-sarif"}, &out, &errs); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestMemoReportFlag runs the CLI over the memo-safe bad fixture and checks
// -memo-report writes the certification document next to the findings.
func TestMemoReportFlag(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join("..", "..", "internal", "analysis", "testdata", "memosafe_bad")
	if err := os.Chdir(fixture); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	report := filepath.Join(t.TempDir(), "memo-report.json")
	var out, errs bytes.Buffer
	code := run([]string{"-enable", "memo-safe", "-memo-report", report, "./..."}, &out, &errs)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (fixture has violations)\nstderr: %s", code, errs.String())
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("memo report not written: %v", err)
	}
	var doc struct {
		Tool    string `json:"tool"`
		Entries []struct {
			Function  string `json:"function"`
			Certified bool   `json:"certified"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if doc.Tool != "sialint" || len(doc.Entries) != 5 {
		t.Fatalf("report = %+v", doc)
	}
	for _, e := range doc.Entries {
		if e.Certified {
			t.Errorf("%s certified despite violations", e.Function)
		}
	}
}

// TestRepoCleanViaCLI runs the tool the way CI does — over the whole module
// with JSON output — and expects a clean, parseable report. This doubles as
// the regression test that loading the repo (which contains testdata
// mini-modules and build-tag-excluded files) does not error.
func TestRepoCleanViaCLI(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var out, errs bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errs)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s\nstdout: %s", code, errs.String(), out.String())
	}
	var report struct {
		Tool     string            `json:"tool"`
		Count    int               `json:"count"`
		Findings []json.RawMessage `json:"findings"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out.String())
	}
	if report.Tool != "sialint" || report.Count != 0 || len(report.Findings) != 0 {
		t.Errorf("report = %+v\n%s", report, out.String())
	}
}
