package sia_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sia"
)

func quickstartPredicate(t *testing.T) (sia.Predicate, *sia.Schema) {
	t.Helper()
	schema := sia.NewSchema(
		sia.Date("l_shipdate"), sia.Date("l_commitdate"), sia.Date("o_orderdate"),
	)
	pred, err := sia.ParsePredicate(`l_shipdate - o_orderdate < 20
		AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
		AND o_orderdate < DATE '1993-06-01'`, schema)
	if err != nil {
		t.Fatal(err)
	}
	return pred, schema
}

func TestSynthesizeContextMatchesSynthesize(t *testing.T) {
	pred, schema := quickstartPredicate(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := sia.SynthesizeContext(ctx, pred, []string{"l_commitdate", "l_shipdate"}, schema, sia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := sia.Synthesize(pred, []string{"l_commitdate", "l_shipdate"}, schema, sia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predicate.String() != legacy.Predicate.String() {
		t.Fatalf("context and legacy entry points disagree:\n%s\n%s", res.Predicate, legacy.Predicate)
	}
}

// TestSynthesizeContextCancellation is the acceptance check: cancelling ctx
// during synthesis returns an ErrTimeout-compatible error promptly and
// leaks no goroutines.
func TestSynthesizeContextCancellation(t *testing.T) {
	pred, schema := quickstartPredicate(t)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	fired := false
	opts := sia.Options{Trace: func(int, fmt.Stringer, bool) {
		if !fired {
			fired = true
			cancel()
		}
	}}
	start := time.Now()
	res, err := sia.SynthesizeContext(ctx, pred, []string{"l_commitdate", "l_shipdate"}, schema, opts)
	if res != nil {
		t.Fatalf("cancelled synthesis returned a result: %+v", res)
	}
	if !errors.Is(err, sia.ErrTimeout) {
		t.Fatalf("error %v does not match sia.ErrTimeout", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not expose context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// Synthesis runs on the caller's goroutine; cancellation must leave
	// nothing behind.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

func TestSentinelErrors(t *testing.T) {
	pred, schema := quickstartPredicate(t)

	// Invalid options surface ErrInvalidOptions.
	_, err := sia.SynthesizeContext(context.Background(), pred, []string{"l_shipdate"}, schema, sia.Options{MaxIterations: -1})
	if !errors.Is(err, sia.ErrInvalidOptions) {
		t.Fatalf("negative options: %v does not match ErrInvalidOptions", err)
	}
	// So do bad arguments.
	_, err = sia.SynthesizeContext(context.Background(), pred, []string{"no_such_column"}, schema, sia.Options{})
	if !errors.Is(err, sia.ErrInvalidOptions) {
		t.Fatalf("unknown column: %v does not match ErrInvalidOptions", err)
	}
	// The sentinels are distinct.
	if errors.Is(sia.ErrTimeout, sia.ErrBudget) || errors.Is(sia.ErrBudget, sia.ErrInvalidOptions) {
		t.Fatal("sentinel errors are not distinct")
	}
}
