GO ?= go

.PHONY: build vet test race lint fuzz-smoke check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/sialint ./...

fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/predicate/

# check is the full CI gate: everything must pass before merging.
check: build vet race lint

clean:
	$(GO) clean ./...
