GO ?= go

.PHONY: build vet test race race-engine race-serve lint lint-json lint-sarif lint-alloc lint-self memo-report fuzz-smoke smoke-siad check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel engine must be race-free and byte-deterministic at any
# scheduler width; exercise both extremes.
race-engine:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/engine/
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/engine/

# The result cache's singleflight and the siad handlers are the other
# concurrency hotspots; always run them racy and fresh.
race-serve:
	$(GO) test -race -count=1 ./internal/cache/ ./cmd/siad/

lint:
	$(GO) run ./cmd/sialint ./...

# Machine-readable lint reports for editor and CI integration.
lint-json:
	$(GO) run ./cmd/sialint -json ./...

lint-sarif:
	$(GO) run ./cmd/sialint -sarif ./...

# Interprocedural budgets: every heap allocation reachable from a
# // sia:hotpath entry must be justified, and every // sia:memoize entry
# must certify as memoization-pure.
lint-alloc:
	$(GO) run ./cmd/sialint -enable alloc-budget,memo-safe ./...

# Self-hosting: the analyzers must hold their own code to the same
# standard they impose on the rest of the repo.
lint-self:
	$(GO) run ./cmd/sialint ./internal/analysis/... ./cmd/sialint/...

# Machine-readable purity certificates for the // sia:memoize entries.
memo-report:
	$(GO) run ./cmd/sialint -enable memo-safe -memo-report memo-report.json ./...

fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/predicate/

# Black-box daemon smoke test: start siad, probe /healthz and /metrics,
# require a clean SIGTERM shutdown within 5s.
smoke-siad:
	./scripts/smoke-siad.sh

# check is the full CI gate: everything must pass before merging.
check: build vet race race-engine race-serve lint lint-alloc lint-self smoke-siad

clean:
	$(GO) clean ./...
