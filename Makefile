GO ?= go

.PHONY: build vet test race race-engine race-serve race-smt race-storage lint lint-json lint-sarif lint-alloc lint-concurrency lint-self memo-report bench-smt bench-serve bench-disk fuzz-smoke fuzz-storage smoke-siad smoke-cluster check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel engine must be race-free and byte-deterministic at any
# scheduler width; exercise both extremes.
race-engine:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/engine/
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/engine/

# The result cache's singleflight and the serving tier (sharding, the
# request batcher, admission control) are the other concurrency hotspots;
# always run them racy and fresh.
race-serve:
	$(GO) test -race -count=1 ./internal/cache/ ./internal/serve/... ./cmd/siad/

# The SMT hot path is concurrent in three places — the hash-cons interner,
# the process-wide QE memo, and parallel disjunct elimination — and the
# cache tracer can be swapped while requests are in flight. Run those
# regression suites racy and fresh.
race-smt:
	$(GO) test -race -count=1 ./internal/smt/ ./internal/cache/...

# The segment store's append path and scan path are concurrent (RWMutex
# around the segment list, hooks fired outside the lock); run its suite
# racy and fresh.
race-storage:
	$(GO) test -race -count=1 ./internal/storage/

lint:
	$(GO) run ./cmd/sialint ./...

# Machine-readable lint reports for editor and CI integration.
lint-json:
	$(GO) run ./cmd/sialint -json ./...

lint-sarif:
	$(GO) run ./cmd/sialint -sarif ./...

# Interprocedural budgets: every heap allocation reachable from a
# // sia:hotpath entry must be justified, and every // sia:memoize entry
# must certify as memoization-pure.
lint-alloc:
	$(GO) run ./cmd/sialint -enable alloc-budget,memo-safe ./...

# Concurrency-safety and untrusted-input gate: goroutine lifetimes,
# atomic/plain access mixing, channel-state protocol, and request-derived
# values flowing unbounded into timeouts, loop bounds and allocations.
lint-concurrency:
	$(GO) run ./cmd/sialint -enable goroutine-leak,atomic-mix,chan-misuse,taint-bound ./...

# Self-hosting: the analyzers must hold their own code to the same
# standard they impose on the rest of the repo.
lint-self:
	$(GO) run ./cmd/sialint ./internal/analysis/... ./cmd/sialint/...

# Machine-readable purity certificates for the // sia:memoize entries.
memo-report:
	$(GO) run ./cmd/sialint -enable memo-safe -memo-report memo-report.json ./...

# SMT hot-path bench: runs the Table 2/3 synthesis workload and writes
# per-kind solver latency distributions to BENCH_smt.json, with per-kind
# speedups against the committed BENCH_smt_baseline.json (captured on the
# pre-interner/pre-memo solver).
bench-smt:
	$(GO) run ./cmd/siabench -experiment table2,table3 -queries 20 -scale 1 \
		-bench-out BENCH_smt.json -bench-baseline BENCH_smt_baseline.json

# Serving-tier bench: single replica vs a 3-replica in-process sharded
# cluster on a Zipf-skewed recurring workload, plus a kill-and-restart
# snapshot-warming measurement. Writes BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/siabench -experiment serve -serve-out BENCH_serve.json

# Disk-storage bench: the Fig. 9 runtime comparison over zone-mapped
# segment files, where the Sia rewrite's synthesized predicate prunes
# segments before their pages are read. Writes BENCH_disk.json.
bench-disk:
	$(GO) run ./cmd/siabench -experiment fig9-disk -queries 40 -scale 1,10 \
		-disk-out BENCH_disk.json

fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/predicate/

# Segment-decoder fuzz smoke: corrupt inputs must produce ErrCorrupt,
# never a panic, and valid inputs must round-trip.
fuzz-storage:
	$(GO) test -fuzz=FuzzReadSegment -fuzztime=10s -run='^$$' ./internal/storage/

# Black-box daemon smoke test: start siad, probe /healthz and /metrics,
# require a clean SIGTERM shutdown within 5s.
smoke-siad:
	./scripts/smoke-siad.sh

# Black-box cluster smoke test: 3 real siad processes sharded via -peers,
# deterministic routing, cross-replica cache hits, drain-writes-snapshot
# and warm restart.
smoke-cluster:
	./scripts/smoke-cluster.sh

# check is the full CI gate: everything must pass before merging.
check: build vet race race-engine race-serve race-smt race-storage lint lint-alloc lint-concurrency lint-self smoke-siad smoke-cluster

clean:
	$(GO) clean ./...
