GO ?= go

.PHONY: build vet test race race-engine race-serve lint lint-json lint-sarif fuzz-smoke smoke-siad check clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The parallel engine must be race-free and byte-deterministic at any
# scheduler width; exercise both extremes.
race-engine:
	GOMAXPROCS=1 $(GO) test -race -count=1 ./internal/engine/
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/engine/

# The result cache's singleflight and the siad handlers are the other
# concurrency hotspots; always run them racy and fresh.
race-serve:
	$(GO) test -race -count=1 ./internal/cache/ ./cmd/siad/

lint:
	$(GO) run ./cmd/sialint ./...

# Machine-readable lint reports for editor and CI integration.
lint-json:
	$(GO) run ./cmd/sialint -json ./...

lint-sarif:
	$(GO) run ./cmd/sialint -sarif ./...

fuzz-smoke:
	$(GO) test -fuzz=Fuzz -fuzztime=10s -run='^$$' ./internal/predicate/

# Black-box daemon smoke test: start siad, probe /healthz and /metrics,
# require a clean SIGTERM shutdown within 5s.
smoke-siad:
	./scripts/smoke-siad.sh

# check is the full CI gate: everything must pass before merging.
check: build vet race race-engine race-serve lint smoke-siad

clean:
	$(GO) clean ./...
